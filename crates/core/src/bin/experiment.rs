//! Run a single experiment by id.
//!
//! ```sh
//! cargo run --release --bin experiment -- fig23
//! cargo run --release --bin experiment -- list
//! cargo run --release --bin experiment -- fig21 --full
//! ```

use cryowire::experiments::{self, Fidelity};
use cryowire::Report;

const IDS: &[&str] = &[
    "fig2",
    "fig3",
    "fig5",
    "fig9",
    "fig10",
    "fig12",
    "fig13",
    "fig14",
    "tab1",
    "tab3",
    "tab4",
    "fig16",
    "fig17",
    "fig18",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "fig27",
    "abl-bus",
    "abl-ways",
    "abl-ff",
    "abl-alu",
    "abl-thick",
    "abl-depth",
    "abl-engine",
    "abl-core-engine",
    "abl-ipc",
    "abl-coherence",
    "cpi-sim",
    "summary",
];

fn run(id: &str, fidelity: Fidelity) -> Option<Report> {
    Some(match id {
        "fig2" => experiments::fig02_stage_breakdown().report(),
        "fig3" => experiments::fig03_cpi_stacks().report(),
        "fig5" => experiments::fig05_wire_speedup().report(),
        "fig9" => experiments::fig09_validation().report(),
        "fig10" => experiments::fig10_link_validation().report(),
        "fig12" => experiments::fig12_critical_path_300k().report(),
        "fig13" => experiments::fig13_critical_path_77k().report(),
        "fig14" => experiments::fig14_superpipelined().report(),
        "tab1" => experiments::tab01_floorplan().report(),
        "tab3" => experiments::tab03_core_specs().report(),
        "tab4" => experiments::tab04_setup(),
        "fig16" => experiments::fig16_llc_latency().report(),
        "fig17" => experiments::fig17_bus_vs_mesh().report(),
        "fig18" => experiments::fig18_bus_load_latency(fidelity).report(),
        "fig20" => experiments::fig20_bus_latency_breakdown().report(),
        "fig21" => experiments::fig21_noc_load_latency(fidelity).report(),
        "fig22" => experiments::fig22_noc_power().report(),
        "fig23" => experiments::fig23_system_performance(fidelity).report(),
        "fig24" => experiments::fig24_spec_prefetch(fidelity).report(),
        "fig25" => experiments::fig25_traffic_patterns(fidelity).report(),
        "fig26" => experiments::fig26_hybrid_256(fidelity).report(),
        "fig27" => experiments::fig27_temperature_sweep().report(),
        "abl-bus" => experiments::ablation_bus_topology().report(),
        "abl-ways" => experiments::ablation_interleaving().report(),
        "abl-ff" => experiments::ablation_ff_overhead().report(),
        "abl-alu" => experiments::ablation_alu_count().report(),
        "abl-thick" => experiments::ablation_wire_thickness().report(),
        "abl-depth" => experiments::ablation_depth_sweep().report(),
        "abl-engine" => experiments::ablation_engine_comparison().report(),
        "abl-core-engine" => experiments::ablation_core_engine().report(),
        "abl-ipc" => experiments::ipc_cross_validation().report(),
        "cpi-sim" => experiments::cpi_stack_cycle_level().report(),
        "abl-coherence" => experiments::coherence_cross_validation().report(),
        "summary" => experiments::headline_summary(fidelity).report(),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fidelity = if args.iter().any(|a| a == "--full") {
        Fidelity::Full
    } else {
        Fidelity::Quick
    };
    let id = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str);

    match id {
        None | Some("list") => {
            println!("available experiments:");
            for id in IDS {
                println!("  {id}");
            }
            println!("\nusage: experiment <id> [--full] [--json]");
        }
        Some(id) => match run(id, fidelity) {
            Some(report) => {
                if args.iter().any(|a| a == "--json") {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&report).expect("reports serialize")
                    );
                } else {
                    println!("{report}");
                }
            }
            None => {
                eprintln!("unknown experiment `{id}`; try `experiment list`");
                std::process::exit(1);
            }
        },
    }
}
