//! The system-level performance model (Gem5-substitute).
//!
//! Per-instruction time is composed from core, NoC, cache, DRAM and
//! synchronisation components. The NoC component self-consistently
//! includes queueing contention: the injection rate depends on the
//! performance, which depends on the contended NoC latency, so the model
//! iterates to a fixed point and additionally enforces the NoC
//! throughput bound (a saturated interconnect caps system throughput no
//! matter how fast the cores are — the effect behind Fig. 24's
//! contention-bound workloads).

use cryowire_noc::TrafficPattern;

use crate::config::{SystemDesign, SystemNoc};
use crate::contention::ContentionEstimate;
use crate::workloads::Workload;

/// Tunable model constants (documented calibration, not physics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Average one-way network traversals per L3 hit under directory
    /// coherence (request + response + occasional owner forwarding).
    pub dir_hit_traversals: f64,
    /// Traversals per L3 miss under directory coherence (adds the memory
    /// controller trip).
    pub dir_miss_traversals: f64,
    /// Serialization tail of a cache-line response, NoC cycles.
    pub data_tail_cycles: f64,
    /// Shared-line round trips per synchronisation event under directory
    /// coherence (barrier/lock line ping-pong).
    pub dir_sync_roundtrips: f64,
    /// Packets injected into a router NoC per memory access (request +
    /// response).
    pub mesh_packets_per_access: f64,
    /// Arbitrated bus transactions per memory access (data returns on the
    /// directed data wires).
    pub bus_packets_per_access: f64,
    /// Fixed-point iterations.
    pub iterations: usize,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            dir_hit_traversals: 2.5,
            dir_miss_traversals: 3.5,
            data_tail_cycles: 4.0,
            dir_sync_roundtrips: 2.0,
            mesh_packets_per_access: 2.0,
            bus_packets_per_access: 1.0,
            iterations: 5,
        }
    }
}

/// Per-instruction time decomposition, ns (multiply by the clock to get a
/// CPI stack).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiStack {
    /// Core-pipeline time.
    pub core_ns: f64,
    /// Interconnect time (exposed).
    pub noc_ns: f64,
    /// Cache-array time.
    pub cache_ns: f64,
    /// DRAM time.
    pub dram_ns: f64,
    /// Synchronisation (barrier/lock) time.
    pub sync_ns: f64,
}

impl CpiStack {
    /// Total time per instruction, ns.
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        self.core_ns + self.noc_ns + self.cache_ns + self.dram_ns + self.sync_ns
    }

    /// Network-attributable share of execution (NoC plus sync, matching
    /// the Fig. 3 "NoC" portion, which Gem5 attributes network-induced
    /// stalls to).
    #[must_use]
    pub fn noc_fraction(&self) -> f64 {
        (self.noc_ns + self.sync_ns) / self.total_ns()
    }

    /// CPI components at a clock of `ghz`.
    #[must_use]
    pub fn cpi_at(&self, ghz: f64) -> [f64; 5] {
        [
            self.core_ns * ghz,
            self.noc_ns * ghz,
            self.cache_ns * ghz,
            self.dram_ns * ghz,
            self.sync_ns * ghz,
        ]
    }
}

/// Evaluation result for one (workload, design) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemMetrics {
    /// Time decomposition per instruction, ns.
    pub stack: CpiStack,
    /// Converged per-core NoC injection rate (packets/core/NoC-cycle).
    pub injection_rate: f64,
    /// Whether the NoC throughput bound was active.
    pub noc_bound: bool,
}

impl SystemMetrics {
    /// Performance = instructions per nanosecond (the inverse of
    /// execution time; Fig. 17/23/24's y-axis before normalisation).
    #[must_use]
    pub fn performance(&self) -> f64 {
        1.0 / self.stack.total_ns()
    }
}

/// The system simulator.
#[derive(Debug, Clone)]
pub struct SystemSimulator {
    params: ModelParams,
}

impl SystemSimulator {
    /// Creates the simulator with default calibration.
    #[must_use]
    pub fn new() -> Self {
        SystemSimulator {
            params: ModelParams::default(),
        }
    }

    /// Overrides the model parameters.
    #[must_use]
    pub fn with_params(params: ModelParams) -> Self {
        SystemSimulator { params }
    }

    /// Evaluates `workload` on `design`.
    #[must_use]
    pub fn evaluate(&self, workload: &Workload, design: &SystemDesign) -> SystemMetrics {
        let p = self.params;
        let spec = design.core.spec();
        let f_core = design.core_frequency_ghz();
        let ipc = spec.ipc_at_4ghz;
        let f_noc = design.noc.clock_ghz();

        let core_ns = workload.base_cpi / ipc / f_core;
        let access_per_inst = workload.l2_mpki / 1_000.0;
        let sync_per_inst = workload.barriers_per_kinst / 1_000.0;
        let miss = workload.l3_miss_ratio;
        let l3_ns = design.memory.l3().latency_ns();
        let dram_ns_raw = design.memory.dram_latency_ns();

        let packets_per_access = if design.noc.is_snooping() {
            p.bus_packets_per_access
        } else {
            p.mesh_packets_per_access
        };

        let mut total_ns = core_ns.max(1e-6) * 2.0; // initial guess
        let mut stack = CpiStack {
            core_ns,
            noc_ns: 0.0,
            cache_ns: 0.0,
            dram_ns: 0.0,
            sync_ns: 0.0,
        };
        let mut rate = 0.0;
        let mut bound_active = false;

        for _ in 0..p.iterations {
            rate = (access_per_inst * packets_per_access / (total_ns * f_noc)).min(0.9);
            let (oneway_ns, sync_op_ns, util) = self.noc_costs(&design.noc, rate, f_noc);

            // Exposed NoC time per access: directory pays multiple
            // traversals, snooping pays the transaction plus data wires.
            let (hit_noc, miss_noc) = match &design.noc {
                SystemNoc::Ideal => (0.0, 0.0),
                SystemNoc::Mesh { .. } => {
                    let tail = p.data_tail_cycles / f_noc;
                    (
                        p.dir_hit_traversals * oneway_ns + tail,
                        p.dir_miss_traversals * oneway_ns + tail,
                    )
                }
                SystemNoc::SharedBus { .. } | SystemNoc::CryoBus { .. } => {
                    let (data_ns, tail) = match &design.noc {
                        SystemNoc::SharedBus { bus } => (
                            bus.occupancy_cycles() as f64 / f_noc,
                            p.data_tail_cycles / f_noc,
                        ),
                        SystemNoc::CryoBus { bus } => (
                            bus.occupancy_cycles() as f64 / f_noc,
                            p.data_tail_cycles / f_noc,
                        ),
                        _ => unreachable!(),
                    };
                    let xact = oneway_ns + data_ns + tail;
                    (xact, xact)
                }
            };

            let noc_ns = access_per_inst * ((1.0 - miss) * hit_noc + miss * miss_noc);
            let cache_ns = access_per_inst * l3_ns;
            let dram_ns = access_per_inst * miss * dram_ns_raw / workload.mlp;
            let sync_ns = sync_per_inst * sync_op_ns * design.cores as f64;

            stack = CpiStack {
                core_ns,
                noc_ns,
                cache_ns,
                dram_ns,
                sync_ns,
            };
            let mut t = stack.total_ns();

            // Throughput bound: utilisation above 1 at the assumed rate
            // means the NoC caps throughput; stretch time accordingly.
            if util > 1.0 {
                t = t.max(util * total_ns);
                bound_active = true;
            } else {
                bound_active = false;
            }
            total_ns = t;
        }

        // Fold any throughput-bound stretch into the NoC component so the
        // stack still sums to the total.
        let residual = total_ns - stack.total_ns();
        if residual > 0.0 {
            stack.noc_ns += residual;
        }

        SystemMetrics {
            stack,
            injection_rate: rate,
            noc_bound: bound_active,
        }
    }

    /// Per-NoC cost primitives at an offered rate: (average one-way
    /// latency ns, per-core sync-operation cost ns, peak utilisation).
    fn noc_costs(&self, noc: &SystemNoc, rate: f64, f_noc: f64) -> (f64, f64, f64) {
        match noc {
            SystemNoc::Ideal => (0.0, 0.0, 0.0),
            SystemNoc::Mesh { network, .. } => {
                let est =
                    ContentionEstimate::estimate(network, TrafficPattern::UniformRandom, rate);
                let oneway = est.avg_latency / f_noc;
                // Directory sync: the shared line ping-pongs between
                // cores, each round trip is two traversals.
                let sync_op = self.params.dir_sync_roundtrips * 2.0 * oneway;
                (oneway, sync_op, est.peak_utilization)
            }
            SystemNoc::SharedBus { bus } => {
                let est = ContentionEstimate::estimate(bus, TrafficPattern::UniformRandom, rate);
                let oneway = est.avg_latency / f_noc;
                // Snooping sync: the bus pipelines barrier arrivals at one
                // broadcast occupancy each.
                let sync_op = bus.occupancy_cycles() as f64 / f_noc;
                (oneway, sync_op, est.peak_utilization)
            }
            SystemNoc::CryoBus { bus } => {
                let est = ContentionEstimate::estimate(bus, TrafficPattern::UniformRandom, rate);
                let oneway = est.avg_latency / f_noc;
                let sync_op = bus.occupancy_cycles() as f64 / f_noc / bus.ways() as f64;
                (oneway, sync_op, est.peak_utilization)
            }
        }
    }
}

impl Default for SystemSimulator {
    fn default() -> Self {
        SystemSimulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemDesign;
    use crate::workloads::Workload;

    fn geomean(v: &[f64]) -> f64 {
        (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
    }

    fn speedups(a: &SystemDesign, b: &SystemDesign) -> Vec<f64> {
        // performance(a) / performance(b) per PARSEC workload
        let sim = SystemSimulator::new();
        Workload::parsec()
            .iter()
            .map(|w| sim.evaluate(w, a).performance() / sim.evaluate(w, b).performance())
            .collect()
    }

    #[test]
    fn fig23_full_design_vs_chp_baseline() {
        // Paper: CryoSP (77K, CryoBus) is 2.53x over CHP-core (77K, Mesh)
        // on average, up to 5.74x on streamcluster.
        let s = speedups(&SystemDesign::cryosp_cryobus(), &SystemDesign::chp_mesh());
        let avg = geomean(&s);
        assert!(
            avg > 1.9 && avg < 3.1,
            "CryoSP+CryoBus vs CHP+Mesh average = {avg} (paper 2.53)"
        );
        let sc = s[9]; // streamcluster index in Workload::parsec()
        let max = s.iter().copied().fold(0.0, f64::max);
        assert!(
            (max - sc).abs() < 1e-9,
            "streamcluster should be the best case"
        );
        assert!(sc > 4.0, "streamcluster speed-up = {sc} (paper 5.74)");
    }

    #[test]
    fn fig23_full_design_vs_300k_baseline() {
        // Paper: 3.82x over the 300 K baseline on average.
        let s = speedups(
            &SystemDesign::cryosp_cryobus(),
            &SystemDesign::baseline_300k(),
        );
        let avg = geomean(&s);
        assert!(
            avg > 3.0 && avg < 4.7,
            "CryoSP+CryoBus vs 300K baseline average = {avg} (paper 3.82)"
        );
    }

    #[test]
    fn fig23_cryobus_alone() {
        // Paper: CHP-core (77K, CryoBus) is ~2.1x over CHP-core (77K, Mesh).
        let s = speedups(&SystemDesign::chp_cryobus(), &SystemDesign::chp_mesh());
        let avg = geomean(&s);
        assert!(
            avg > 1.6 && avg < 2.6,
            "CryoBus-only average = {avg} (paper 2.1)"
        );
    }

    #[test]
    fn fig23_cryosp_alone() {
        // Paper: CryoSP (77K, Mesh) is ~16.1 % over CHP-core (77K, Mesh);
        // our additive-time model lands lower (~9-13 %) because the
        // paper's mesh runs appear partially NoC-bound (see EXPERIMENTS.md).
        let s = speedups(&SystemDesign::cryosp_mesh(), &SystemDesign::chp_mesh());
        let avg = geomean(&s);
        assert!(
            avg > 1.05 && avg < 1.25,
            "CryoSP-only average = {avg} (paper 1.161)"
        );
        // Every workload must improve (Section 6.2).
        for (w, sp) in Workload::parsec().iter().zip(&s) {
            assert!(*sp > 1.0, "{} regressed: {sp}", w.name);
        }
    }

    #[test]
    fn fig3_noc_fraction_at_300k() {
        // Fig. 3: network-attributable CPI ≈ 45.6 % average, 76.6 % max on
        // the 300 K 64-core mesh.
        let sim = SystemSimulator::new();
        let design = SystemDesign::baseline_300k();
        let fracs: Vec<f64> = Workload::parsec()
            .iter()
            .map(|w| sim.evaluate(w, &design).stack.noc_fraction())
            .collect();
        let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
        let max = fracs.iter().copied().fold(0.0, f64::max);
        assert!((avg - 0.456).abs() < 0.12, "average NoC fraction = {avg}");
        assert!((max - 0.766).abs() < 0.12, "max NoC fraction = {max}");
    }

    #[test]
    fn fig17_bus_vs_mesh_vs_ideal() {
        // Fig. 17: vs the ideal-NoC 77 K system, 77 K Mesh loses ~43.3 %
        // and the 77 K Shared bus only ~8.1 %.
        let sim = SystemSimulator::new();
        let ideal = SystemDesign::chp_mesh().with_ideal_noc();
        let mesh = SystemDesign::chp_mesh();
        let bus = SystemDesign::chp_mesh()
            .with_shared_bus(cryowire_device::Temperature::liquid_nitrogen());
        let rel = |d: &SystemDesign| {
            let v: Vec<f64> = Workload::parsec()
                .iter()
                .map(|w| sim.evaluate(w, d).performance() / sim.evaluate(w, &ideal).performance())
                .collect();
            geomean(&v)
        };
        let mesh_rel = rel(&mesh);
        let bus_rel = rel(&bus);
        assert!(
            mesh_rel < 0.72,
            "77 K mesh at {mesh_rel} of ideal (paper 0.567)"
        );
        assert!(
            bus_rel > 0.75,
            "77 K shared bus at {bus_rel} of ideal (paper 0.919)"
        );
        assert!(bus_rel > mesh_rel);
    }

    #[test]
    fn memory_bound_workloads_gain_least_from_cryosp() {
        // Section 6.2: bodytrack and x264 show marginal CryoSP gains.
        let s = speedups(&SystemDesign::cryosp_mesh(), &SystemDesign::chp_mesh());
        let parsec = Workload::parsec();
        let avg = geomean(&s);
        for (w, sp) in parsec.iter().zip(&s) {
            if w.name == "bodytrack" || w.name == "x264" {
                assert!(
                    *sp < avg + 0.01,
                    "{} should gain below average: {sp} vs {avg}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn interleaving_never_hurts() {
        let sim = SystemSimulator::new();
        let one = SystemDesign::cryosp_cryobus();
        let two = SystemDesign::cryosp_cryobus_2way();
        for w in Workload::spec() {
            let w = w.with_prefetcher(2.5);
            let p1 = sim.evaluate(&w, &one).performance();
            let p2 = sim.evaluate(&w, &two).performance();
            assert!(p2 >= p1 * 0.999, "{}: 2-way {p2} < 1-way {p1}", w.name);
        }
    }

    #[test]
    fn fig24_spec_prefetch_aggregates() {
        // Section 7.1: CryoSP (77K, CryoBus) beats the 300 K baseline by
        // ~2.11x and CHP (77K, Mesh) by ~37.2 %; 2-way interleaving lifts
        // those to ~2.34x / ~52 %.
        let sim = SystemSimulator::new();
        let designs = [
            SystemDesign::baseline_300k(),
            SystemDesign::chp_mesh(),
            SystemDesign::cryosp_cryobus(),
            SystemDesign::cryosp_cryobus_2way(),
        ];
        let perf = |d: &SystemDesign| {
            let v: Vec<f64> = Workload::spec()
                .iter()
                .map(|w| {
                    sim.evaluate(&w.clone().with_prefetcher(2.5), d)
                        .performance()
                })
                .collect();
            geomean(&v)
        };
        let base = perf(&designs[0]);
        let chp = perf(&designs[1]);
        let cryo = perf(&designs[2]);
        let cryo2 = perf(&designs[3]);
        let vs_base = cryo / base;
        let vs_chp = cryo / chp;
        assert!(
            vs_base > 1.6 && vs_base < 2.9,
            "vs 300K = {vs_base} (paper 2.11)"
        );
        assert!(
            vs_chp > 1.15 && vs_chp < 1.75,
            "vs CHP = {vs_chp} (paper 1.372)"
        );
        assert!(cryo2 > cryo, "2-way must improve the average");
    }

    #[test]
    fn stack_components_sum_to_total() {
        let sim = SystemSimulator::new();
        let m = sim.evaluate(&Workload::parsec()[0], &SystemDesign::cryosp_cryobus());
        let s = m.stack;
        let sum = s.core_ns + s.noc_ns + s.cache_ns + s.dram_ns + s.sync_ns;
        assert!((sum - s.total_ns()).abs() < 1e-12);
        assert!(m.performance() > 0.0);
    }

    #[test]
    fn ideal_noc_has_zero_network_time() {
        let sim = SystemSimulator::new();
        let m = sim.evaluate(
            &Workload::parsec()[1],
            &SystemDesign::chp_mesh().with_ideal_noc(),
        );
        assert_eq!(m.stack.noc_ns, 0.0);
        assert_eq!(m.stack.sync_ns, 0.0);
    }
}
