//! Analytic NoC contention estimation.
//!
//! The cycle-level simulator in `cryowire-noc` is exact but costly inside
//! the system model's self-consistent iteration, so this module provides
//! an M/D/1-style queueing estimate over any [`Network`]: sample packet
//! paths to find each resource's expected utilisation, then charge every
//! leg the Pollaczek–Khinchine waiting time of its resource. The estimate
//! is validated against the cycle-level simulator in this module's tests.

use cryowire_noc::{Network, TrafficPattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of (src, dst) path samples used to estimate resource loads.
const PATH_SAMPLES: usize = 2_000;

/// A contention estimate for one network at one offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionEstimate {
    /// Offered per-node injection rate (packets/node/cycle).
    pub rate: f64,
    /// Average end-to-end latency including queueing, cycles.
    pub avg_latency: f64,
    /// Average zero-load latency, cycles.
    pub zero_load_latency: f64,
    /// Peak resource utilisation (≥ 1 means saturation).
    pub peak_utilization: f64,
}

impl ContentionEstimate {
    /// Whether the network is saturated at this load.
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.peak_utilization >= 1.0
    }

    /// Estimates latency under `pattern` at per-node `rate` for `network`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative.
    #[must_use]
    pub fn estimate(network: &dyn Network, pattern: TrafficPattern, rate: f64) -> Self {
        assert!(rate >= 0.0, "rate must be non-negative");
        let topo = *network.topology();
        let n = topo.nodes();
        let mut rng = StdRng::seed_from_u64(0x5EED);

        // Sample paths: per-resource expected occupancy per injected
        // packet, and the average path decomposition.
        let mut occ_per_packet = vec![0.0f64; network.resource_count()];
        let mut zero_load_sum = 0.0;
        let mut sampled_paths = Vec::with_capacity(PATH_SAMPLES);
        for _ in 0..PATH_SAMPLES {
            let src = rng.gen_range(0..n);
            let dst = pattern.destination(src, &topo, &mut rng);
            let tag = rng.gen::<u64>();
            let legs = network.path(src, dst, tag);
            for leg in &legs {
                if let Some(r) = leg.resource {
                    occ_per_packet[r] += leg.occupancy_cycles as f64 / PATH_SAMPLES as f64;
                }
                zero_load_sum += leg.traversal_cycles as f64 / PATH_SAMPLES as f64;
            }
            sampled_paths.push(legs);
        }

        // Utilisation of each resource: total injected packets/cycle ×
        // expected occupancy contributed per packet.
        let injected_per_cycle = rate * n as f64;
        let util: Vec<f64> = occ_per_packet
            .iter()
            .map(|&o| injected_per_cycle * o)
            .collect();
        let peak = util.iter().copied().fold(0.0, f64::max);

        // Average waiting time per packet: P-K wait at each leg's resource.
        let mut wait_sum = 0.0;
        for legs in &sampled_paths {
            for leg in legs {
                if let Some(r) = leg.resource {
                    // Clamp at 90 % utilisation: past that point the
                    // throughput bound (enforced by the system model)
                    // governs, and an unclamped P-K wait would double-count
                    // the overload.
                    let rho = util[r].min(0.90);
                    let service = leg.occupancy_cycles as f64;
                    wait_sum += rho * service / (2.0 * (1.0 - rho)) / PATH_SAMPLES as f64;
                }
            }
        }

        ContentionEstimate {
            rate,
            avg_latency: zero_load_sum + wait_sum,
            zero_load_latency: zero_load_sum,
            peak_utilization: peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryowire_device::Temperature;
    use cryowire_noc::{CryoBus, RouterClass, RouterNetwork, SharedBus, SimConfig, Simulator};

    #[test]
    fn zero_rate_gives_zero_load_latency() {
        let bus = CryoBus::new(64, Temperature::liquid_nitrogen());
        let e = ContentionEstimate::estimate(&bus, TrafficPattern::UniformRandom, 0.0);
        assert!((e.avg_latency - e.zero_load_latency).abs() < 1e-9);
        assert!(!e.saturated());
    }

    #[test]
    fn estimate_matches_cycle_simulator_at_moderate_load() {
        // Validate the queueing estimate against the exact reservation
        // simulator on the 77 K shared bus at ~60 % utilisation.
        let bus = SharedBus::new(64, Temperature::liquid_nitrogen());
        let rate = 0.003; // util = 0.003 × 64 × 3 ≈ 0.58
        let est = ContentionEstimate::estimate(&bus, TrafficPattern::UniformRandom, rate);
        let sim = Simulator::new(SimConfig {
            cycles: 40_000,
            warmup: 8_000,
            ..SimConfig::default()
        });
        let exact = sim.run(&bus, TrafficPattern::UniformRandom, rate).unwrap();
        let err = (est.avg_latency - exact.avg_latency).abs() / exact.avg_latency;
        assert!(
            err < 0.30,
            "estimate {} vs simulated {} (err {err})",
            est.avg_latency,
            exact.avg_latency
        );
    }

    #[test]
    fn saturation_detected_past_capacity() {
        let bus = SharedBus::new(64, Temperature::ambient());
        // 300 K bus capacity ≈ 1/(64×8) ≈ 0.00195/core.
        let e = ContentionEstimate::estimate(&bus, TrafficPattern::UniformRandom, 0.004);
        assert!(e.saturated());
    }

    #[test]
    fn latency_monotone_in_rate() {
        let mesh = RouterNetwork::mesh64(RouterClass::OneCycle, Temperature::ambient());
        let mut last = 0.0;
        for rate in [0.001, 0.01, 0.05, 0.1] {
            let e = ContentionEstimate::estimate(&mesh, TrafficPattern::UniformRandom, rate);
            assert!(e.avg_latency >= last);
            last = e.avg_latency;
        }
    }

    #[test]
    fn mesh_has_more_headroom_than_bus() {
        let t = Temperature::liquid_nitrogen();
        let mesh = RouterNetwork::mesh64(RouterClass::OneCycle, t);
        let bus = CryoBus::new(64, t);
        let rate = 0.02;
        let em = ContentionEstimate::estimate(&mesh, TrafficPattern::UniformRandom, rate);
        let eb = ContentionEstimate::estimate(&bus, TrafficPattern::UniformRandom, rate);
        assert!(!em.saturated());
        assert!(eb.saturated());
    }
}
