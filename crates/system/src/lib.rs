//! # cryowire-system
//!
//! System-level performance modelling of the 64-core cryogenic computer —
//! the Gem5+Garnet substitute behind Fig. 3, 17, 23, 24 and 27.
//!
//! Real PARSEC/SPEC binaries cannot run here, so each workload is a
//! calibrated profile (base CPI, L2 MPKI, L3 miss ratio, barrier rate)
//! drawn from the paper's own characterisation. The simulator composes
//! per-instruction time from four mechanisms:
//!
//! * **core time** — base CPI over the design's clock and IPC factor
//!   (Table 3),
//! * **memory time** — L2-miss traffic through the L3/DRAM paths of
//!   [`cryowire_memory`], with NoC latency *including contention* from the
//!   queueing model in [`contention`] (self-consistently iterated, since
//!   faster cores inject more traffic),
//! * **synchronisation time** — barrier cost, where snooping buses
//!   pipeline the barrier line while directory meshes ping-pong it,
//! * **prefetcher traffic** — the aggressive stride prefetcher of
//!   Section 7.1 multiplies NoC traffic for the SPEC rate-mode runs.
//!
//! ```
//! use cryowire_system::{SystemDesign, SystemSimulator, Workload};
//!
//! let sim = SystemSimulator::new();
//! let base = sim.evaluate(&Workload::parsec()[0], &SystemDesign::baseline_300k());
//! let cryo = sim.evaluate(&Workload::parsec()[0], &SystemDesign::cryosp_cryobus());
//! assert!(cryo.performance() > base.performance());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod contention;
pub mod event_sim;
pub mod simulator;
pub mod workloads;

pub use config::{SystemDesign, SystemNoc};
pub use contention::ContentionEstimate;
pub use event_sim::{EventMetrics, EventSimConfig, EventSimulator};
pub use simulator::{CpiStack, SystemMetrics, SystemSimulator};
pub use workloads::{Suite, Workload};
