//! Closed-loop event-driven 64-core simulation.
//!
//! The analytic model in [`crate::simulator`] composes per-instruction
//! time from queueing formulas; this module *simulates* the same system:
//! every core alternates compute segments, memory accesses (which reserve
//! the actual interconnect resources of the `cryowire-noc` [`Network`]),
//! and barrier synchronisations (cores genuinely wait for the slowest
//! arrival, then serialize their sync operations through the
//! interconnect). It is the closed-loop check that the open-loop queueing
//! approximations in the analytic model do not distort the paper's
//! comparisons.
//!
//! [`EventSimulator::simulate_with_faults`] runs the same loop under a
//! deterministic [`FaultSchedule`]: dead interconnect resources force
//! re-routing (or bounded retries when no route exists), degraded links
//! and router stalls stretch reservations, and cooling transients raise
//! the operating [`Temperature`](cryowire_device::Temperature) mid-run so
//! the device and wire models re-derive core and NoC delays. A progress
//! watchdog converts would-be hangs into [`SimError::Stalled`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cryowire_device::Temperature;
use cryowire_faults::{FaultSchedule, LinkState};
use cryowire_noc::{LinkModel, Network, PathTable, SimError};
use cryowire_pipeline::CriticalPathModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{SystemDesign, SystemNoc};
use crate::workloads::Workload;

/// Event-simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventSimConfig {
    /// Simulated wall-clock horizon, ns.
    pub horizon_ns: f64,
    /// RNG seed for access/barrier jitter.
    pub seed: u64,
    /// Progress watchdog: total blocked memory accesses tolerated before
    /// a faulted run is declared [`SimError::Stalled`] (clamped to ≥ 1).
    pub watchdog_blocked_accesses: u64,
}

impl Default for EventSimConfig {
    fn default() -> Self {
        EventSimConfig {
            horizon_ns: 40_000.0,
            seed: 0xBEEF,
            watchdog_blocked_accesses: 10_000,
        }
    }
}

/// Result of a closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventMetrics {
    /// Aggregate instructions per nanosecond per core.
    pub perf_per_core: f64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Barriers completed.
    pub barriers: u64,
    /// Average memory-access latency observed, ns.
    pub avg_mem_latency_ns: f64,
    /// Memory accesses that found no usable route (faulted runs only;
    /// each costs the issuing core a bounded retry backoff).
    pub blocked_accesses: u64,
}

/// The closed-loop simulator.
#[derive(Debug, Clone)]
pub struct EventSimulator {
    config: EventSimConfig,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct CoreState {
    time_ns: f64,
    instructions: u64,
    to_next_mem: f64,
    to_next_barrier: f64,
    waiting_barrier: bool,
}

/// Per-temperature slowdown factors, re-derived from the device models
/// whenever a cooling transient moves the operating point.
#[derive(Debug, Clone, Copy)]
struct Derates {
    kelvin: f64,
    /// Core frequency at the current temperature relative to nominal
    /// (≤ 1 when the machine warms up).
    core: f64,
    /// NoC wire speed at the current temperature relative to nominal.
    noc: f64,
}

impl EventSimulator {
    /// Creates the simulator.
    #[must_use]
    pub fn new(config: EventSimConfig) -> Self {
        EventSimulator { config }
    }

    /// Runs `workload` on `design` in closed loop.
    ///
    /// # Panics
    ///
    /// Panics if the design's core count differs from its NoC size.
    #[must_use]
    pub fn simulate(&self, workload: &Workload, design: &SystemDesign) -> EventMetrics {
        match self.simulate_with_faults(workload, design, &FaultSchedule::default()) {
            Ok(m) => m,
            Err(e) => unreachable!("fault-free run cannot stall: {e}"),
        }
    }

    /// The nominal operating temperature of the design's interconnect
    /// (the baseline a cooling transient raises).
    fn base_temperature(design: &SystemDesign) -> Temperature {
        match &design.noc {
            SystemNoc::Mesh { network, .. } => network.temperature(),
            SystemNoc::SharedBus { bus } => bus.temperature(),
            SystemNoc::CryoBus { bus } => bus.temperature(),
            SystemNoc::Ideal => Temperature::liquid_nitrogen(),
        }
    }

    /// Runs `workload` on `design` under a deterministic fault schedule.
    ///
    /// Schedule cycles are interpreted as *nominal NoC clock cycles*
    /// (`cycle = t_ns · f_noc`), matching the NoC-level engine's time
    /// base so one schedule drives both layers. With an empty schedule
    /// this reproduces [`EventSimulator::simulate`] exactly, RNG stream
    /// included.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] when more than
    /// [`EventSimConfig::watchdog_blocked_accesses`] memory accesses found
    /// no usable route — the graceful-degradation contract: a fault set
    /// that disconnects the interconnect yields a diagnosis, not a hang.
    ///
    /// # Panics
    ///
    /// Panics if the design's core count differs from its NoC size.
    #[allow(clippy::too_many_lines)]
    pub fn simulate_with_faults(
        &self,
        workload: &Workload,
        design: &SystemDesign,
        faults: &FaultSchedule,
    ) -> Result<EventMetrics, SimError> {
        let n = design.cores;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let spec = design.core.spec();
        let f_core = design.core_frequency_ghz();
        let f_noc = design.noc.clock_ghz();
        let t_inst = workload.base_cpi / spec.ipc_at_4ghz / f_core; // ns/inst

        // Memory path characteristics (same decomposition as the analytic
        // model).
        let l3_ns = design.memory.l3().latency_ns();
        let dram_ns = design.memory.dram_latency_ns() / workload.mlp;
        let miss = workload.l3_miss_ratio;

        let insts_per_mem = if workload.l2_mpki > 0.0 {
            1_000.0 / workload.l2_mpki
        } else {
            f64::INFINITY
        };
        let insts_per_barrier = if workload.barriers_per_kinst > 0.0 {
            1_000.0 / workload.barriers_per_kinst
        } else {
            f64::INFINITY
        };

        // Shared interconnect resources (reservation semantics identical
        // to the NoC crate's engine), in NoC cycles.
        let resource_count = design.noc.network().map_or(0, Network::resource_count);
        let mut free = vec![0.0f64; resource_count];

        // Memoized routes: every (src, dst, route-class) path is computed
        // once per dead-set epoch instead of once per memory access.
        // Rebuilds draw no randomness, so the RNG stream — and therefore
        // every metric — is bit-identical to the direct-routing loop.
        let mut routes = PathTable::new();
        if let Some(net) = design.noc.network() {
            routes.rebuild(net, &[]);
        }

        // Fault state caches, refreshed only at schedule change points
        // (heap pops are monotone in time, so a cursor suffices).
        let base_t = Self::base_temperature(design);
        let critical_path = CriticalPathModel::boom_skylake();
        let wire = LinkModel::new();
        let has_transient = faults.has_cooling_transient();
        let change_points = faults.change_points();
        let mut next_change = 0usize;
        let mut dead: Vec<usize> = Vec::new();
        let mut derates = Derates {
            kelvin: base_t.kelvin(),
            core: 1.0,
            noc: 1.0,
        };
        let watchdog = self.config.watchdog_blocked_accesses.max(1);
        let mut blocked: u64 = 0;

        let mut cores = vec![
            CoreState {
                time_ns: 0.0,
                instructions: 0,
                to_next_mem: insts_per_mem,
                to_next_barrier: insts_per_barrier,
                waiting_barrier: false,
            };
            n
        ];
        // Randomize phases so cores do not inject in lockstep.
        for c in cores.iter_mut() {
            c.to_next_mem *= rng.gen::<f64>().max(0.05);
            c.to_next_barrier *= rng.gen::<f64>().max(0.05);
        }

        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..n).map(|i| Reverse((0u64, i))).collect();
        let ns_key = |t: f64| (t * 1_000.0) as u64;

        let mut barriers_done: u64 = 0;
        let mut arrived: usize = 0;
        let mut barrier_arrival_max: f64 = 0.0;
        let mut mem_lat_sum = 0.0;
        let mut mem_count: u64 = 0;

        while let Some(Reverse((_, i))) = heap.pop() {
            let mut c = cores[i];
            if c.waiting_barrier || c.time_ns >= self.config.horizon_ns {
                continue;
            }
            // Refresh cached fault state at schedule boundaries; the
            // schedule's time base is nominal NoC cycles.
            let cycle = (c.time_ns * f_noc) as u64;
            while change_points.get(next_change).is_some_and(|&p| p <= cycle) {
                next_change += 1;
                let dead_now = faults.dead_resources_at(cycle);
                if dead_now != dead {
                    dead = dead_now;
                    if let Some(net) = design.noc.network() {
                        routes.rebuild(net, &dead);
                    }
                }
            }
            if has_transient {
                let t_now = faults.temperature_at(cycle, base_t);
                if t_now.kelvin() != derates.kelvin {
                    derates = Derates {
                        kelvin: t_now.kelvin(),
                        core: critical_path.frequency_ghz(t_now)
                            / critical_path.frequency_ghz(base_t),
                        noc: wire.speedup(t_now) / wire.speedup(base_t),
                    };
                }
            }
            let t_inst_now = t_inst / derates.core;
            let f_noc_now = f_noc * derates.noc;

            // Next event: memory access or barrier, whichever comes first.
            let work = c.to_next_mem.min(c.to_next_barrier);
            let is_barrier = c.to_next_barrier <= c.to_next_mem;
            c.time_ns += work * t_inst_now;
            c.instructions += work as u64;
            c.to_next_mem -= work;
            c.to_next_barrier -= work;

            if is_barrier {
                c.to_next_barrier = insts_per_barrier;
                c.waiting_barrier = true;
                arrived += 1;
                barrier_arrival_max = barrier_arrival_max.max(c.time_ns);
                cores[i] = c;
                if arrived == n {
                    // Release: each core performs one serialized sync
                    // operation through the interconnect.
                    let release =
                        self.barrier_release_time(design, barrier_arrival_max, n, f_noc_now);
                    for (j, core) in cores.iter_mut().enumerate() {
                        core.waiting_barrier = false;
                        core.time_ns = release;
                        heap.push(Reverse((ns_key(release), j)));
                        let _ = j;
                    }
                    barriers_done += 1;
                    arrived = 0;
                    barrier_arrival_max = 0.0;
                }
                continue;
            }

            // Memory access: reserve the network path, then pay the
            // L3/DRAM latency.
            c.to_next_mem = insts_per_mem;
            let start = c.time_ns;
            let Some(t_after_noc) = self.traverse(
                design, &mut free, &mut rng, c.time_ns, f_noc_now, faults, &routes, cycle,
            ) else {
                // No usable route: bounded retry backoff, counted against
                // the watchdog so a disconnected fabric cannot spin
                // forever.
                blocked += 1;
                if blocked >= watchdog {
                    return Err(SimError::Stalled {
                        cycle,
                        blocked_resources: dead.clone(),
                    });
                }
                c.to_next_mem = 0.0; // retry the access after the backoff
                c.time_ns += 16.0 / f_noc_now;
                cores[i] = c;
                if c.time_ns < self.config.horizon_ns {
                    heap.push(Reverse((ns_key(c.time_ns), i)));
                }
                continue;
            };
            let is_miss = rng.gen::<f64>() < miss;
            let mem = l3_ns + if is_miss { dram_ns } else { 0.0 };
            // Response path: directory pays another traversal; snooping
            // data returns on the directed data wires (uncontended).
            let t_resp = match &design.noc {
                SystemNoc::Mesh { .. } => {
                    match self.traverse(
                        design,
                        &mut free,
                        &mut rng,
                        t_after_noc + mem,
                        f_noc_now,
                        faults,
                        &routes,
                        cycle,
                    ) {
                        Some(t) => t,
                        None => {
                            // Response blocked: the request already
                            // happened, so charge the backoff and move on.
                            blocked += 1;
                            if blocked >= watchdog {
                                return Err(SimError::Stalled {
                                    cycle,
                                    blocked_resources: dead.clone(),
                                });
                            }
                            t_after_noc + mem + 16.0 / f_noc_now
                        }
                    }
                }
                _ => t_after_noc + mem + 1.0 / f_noc_now,
            };
            c.time_ns = t_resp;
            mem_lat_sum += c.time_ns - start;
            mem_count += 1;
            cores[i] = c;
            if c.time_ns < self.config.horizon_ns {
                heap.push(Reverse((ns_key(c.time_ns), i)));
            }
        }

        let total_insts: u64 = cores.iter().map(|c| c.instructions).sum();
        Ok(EventMetrics {
            perf_per_core: total_insts as f64 / (self.config.horizon_ns * n as f64),
            instructions: total_insts,
            barriers: barriers_done,
            avg_mem_latency_ns: if mem_count == 0 {
                0.0
            } else {
                mem_lat_sum / mem_count as f64
            },
            blocked_accesses: blocked,
        })
    }

    /// Reserves one network traversal starting at `t_ns`; returns the
    /// completion time in ns, or `None` when every allowed route crosses
    /// a dead resource (the memoized `routes` table holds the sentinel
    /// for the current dead-set epoch).
    #[allow(clippy::too_many_arguments)]
    fn traverse(
        &self,
        design: &SystemDesign,
        free: &mut [f64],
        rng: &mut StdRng,
        t_ns: f64,
        f_noc: f64,
        faults: &FaultSchedule,
        routes: &PathTable,
        cycle: u64,
    ) -> Option<f64> {
        let Some(net) = design.noc.network() else {
            return Some(t_ns); // ideal NoC
        };
        let n = net.topology().nodes();
        let src = rng.gen_range(0..n);
        let mut dst = rng.gen_range(0..n);
        if dst == src {
            dst = (dst + 1) % n;
        }
        let tag: u64 = rng.gen();
        let (legs, _zero) = routes.lookup(src, dst, tag)?;
        let mut t = t_ns;
        for leg in legs {
            let mut occupancy = leg.occupancy_cycles as f64;
            let mut traversal = leg.traversal_cycles as f64;
            if let Some(r) = leg.resource {
                if let LinkState::Degraded(f) = faults.link_state(r, cycle) {
                    occupancy *= f;
                    traversal *= f;
                }
                traversal += faults.stall_cycles(r, cycle) as f64;
                let start = t.max(free[r]);
                free[r] = start + occupancy / f_noc;
                t = start;
            }
            t += traversal / f_noc;
        }
        Some(t)
    }

    /// Barrier release: serialized sync operations through the NoC after
    /// the last arrival.
    fn barrier_release_time(
        &self,
        design: &SystemDesign,
        last_arrival_ns: f64,
        cores: usize,
        f_noc: f64,
    ) -> f64 {
        let per_core = match &design.noc {
            SystemNoc::Ideal => 0.0,
            SystemNoc::Mesh { network, .. } => {
                // Line ping-pong: two round trips of average zero-load
                // latency per core.
                4.0 * network.average_zero_load_latency() / f_noc
            }
            SystemNoc::SharedBus { bus } => bus.occupancy_cycles() as f64 / f_noc,
            SystemNoc::CryoBus { bus } => bus.occupancy_cycles() as f64 / f_noc / bus.ways() as f64,
        };
        last_arrival_ns + per_core * cores as f64
    }
}

impl Default for EventSimulator {
    fn default() -> Self {
        EventSimulator::new(EventSimConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::SystemSimulator;
    use cryowire_faults::{FaultEvent, FaultKind};

    fn quick() -> EventSimulator {
        EventSimulator::new(EventSimConfig {
            horizon_ns: 20_000.0,
            seed: 42,
            watchdog_blocked_accesses: 500,
        })
    }

    #[test]
    fn event_sim_reproduces_fig23_direction() {
        // The closed-loop simulation must agree with the analytic model's
        // ordering: CryoSP+CryoBus > CHP+Mesh on every workload.
        let sim = quick();
        for w in [
            Workload::parsec_by_name("streamcluster").unwrap(),
            Workload::parsec_by_name("ferret").unwrap(),
            Workload::parsec_by_name("blackscholes").unwrap(),
        ] {
            let mesh = sim.simulate(&w, &SystemDesign::chp_mesh());
            let cryo = sim.simulate(&w, &SystemDesign::cryosp_cryobus());
            assert!(
                cryo.perf_per_core > mesh.perf_per_core,
                "{}: cryo {} vs mesh {}",
                w.name,
                cryo.perf_per_core,
                mesh.perf_per_core
            );
        }
    }

    #[test]
    fn streamcluster_gain_matches_analytic_within_tolerance() {
        // Closed-loop and analytic streamcluster speed-ups must agree
        // within 40 % relative (they model contention differently).
        let w = Workload::parsec_by_name("streamcluster").unwrap();
        let event = quick();
        let analytic = SystemSimulator::new();
        let ev_gain = event
            .simulate(&w, &SystemDesign::cryosp_cryobus())
            .perf_per_core
            / event.simulate(&w, &SystemDesign::chp_mesh()).perf_per_core;
        let an_gain = analytic
            .evaluate(&w, &SystemDesign::cryosp_cryobus())
            .performance()
            / analytic
                .evaluate(&w, &SystemDesign::chp_mesh())
                .performance();
        let ratio = ev_gain / an_gain;
        assert!(
            ratio > 0.6 && ratio < 1.67,
            "event gain {ev_gain} vs analytic gain {an_gain}"
        );
    }

    #[test]
    fn barriers_actually_complete() {
        let w = Workload::parsec_by_name("streamcluster").unwrap();
        let m = quick().simulate(&w, &SystemDesign::cryosp_cryobus());
        assert!(m.barriers > 0, "no barriers completed");
        assert!(m.instructions > 0);
    }

    #[test]
    fn ideal_noc_is_fastest() {
        let w = Workload::parsec_by_name("bodytrack").unwrap();
        let sim = quick();
        let ideal = sim.simulate(&w, &SystemDesign::chp_mesh().with_ideal_noc());
        let mesh = sim.simulate(&w, &SystemDesign::chp_mesh());
        assert!(ideal.perf_per_core > mesh.perf_per_core);
    }

    #[test]
    fn memory_latency_observed_is_sane() {
        let w = Workload::parsec_by_name("canneal").unwrap();
        let m = quick().simulate(&w, &SystemDesign::chp_mesh());
        // L3 2.5 ns + NoC a few ns; DRAM path tens of ns.
        assert!(
            m.avg_mem_latency_ns > 2.0 && m.avg_mem_latency_ns < 60.0,
            "avg mem latency = {} ns",
            m.avg_mem_latency_ns
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let w = Workload::parsec_by_name("vips").unwrap();
        let a = quick().simulate(&w, &SystemDesign::cryosp_cryobus());
        let b = quick().simulate(&w, &SystemDesign::cryosp_cryobus());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_schedule_reproduces_fault_free_run_exactly() {
        let w = Workload::parsec_by_name("streamcluster").unwrap();
        for design in [SystemDesign::chp_mesh(), SystemDesign::cryosp_cryobus()] {
            let plain = quick().simulate(&w, &design);
            let faulted = quick()
                .simulate_with_faults(&w, &design, &FaultSchedule::default())
                .unwrap();
            assert_eq!(plain, faulted, "{}", design.name);
            assert_eq!(faulted.blocked_accesses, 0);
        }
    }

    #[test]
    fn cooling_transient_slows_the_machine() {
        // 77 K → 120 K mid-run: the critical-path and wire models
        // re-derive slower clocks, so retired instructions must drop.
        let w = Workload::parsec_by_name("streamcluster").unwrap();
        let design = SystemDesign::cryosp_cryobus();
        let horizon_cycles = 20_000 * 4; // 20 µs at ~4 GHz NoC clock
        let transient = FaultSchedule::from_events(
            vec![FaultEvent::transient(
                0,
                horizon_cycles,
                FaultKind::CoolingTransient { peak_kelvin: 120.0 },
            )],
            horizon_cycles,
        );
        let nominal = quick().simulate(&w, &design);
        let hot = quick()
            .simulate_with_faults(&w, &design, &transient)
            .unwrap();
        assert!(
            hot.perf_per_core < nominal.perf_per_core,
            "120 K transient should cost performance: {} vs {}",
            hot.perf_per_core,
            nominal.perf_per_core
        );
    }

    #[test]
    fn dead_cryobus_way_degrades_but_completes() {
        // Killing one way of the 2-way CryoBus halves interleaving; the
        // dynamic link connection keeps the survivor broadcasting.
        let w = Workload::parsec_by_name("streamcluster").unwrap();
        let design = SystemDesign::cryosp_cryobus_2way();
        let faults = FaultSchedule::from_events(
            vec![FaultEvent::permanent(
                0,
                FaultKind::LinkDead { resource: 0 },
            )],
            80_000,
        );
        let nominal = quick().simulate(&w, &design);
        let degraded = quick().simulate_with_faults(&w, &design, &faults).unwrap();
        assert!(degraded.instructions > 0, "survivor way must keep serving");
        assert!(
            degraded.perf_per_core <= nominal.perf_per_core,
            "losing a way cannot speed the bus up"
        );
    }

    #[test]
    fn fully_dead_fabric_trips_watchdog() {
        let w = Workload::parsec_by_name("streamcluster").unwrap();
        let design = SystemDesign::cryosp_cryobus();
        let net_resources = design.noc.network().unwrap().resource_count();
        let faults = FaultSchedule::from_events(
            (0..net_resources)
                .map(|r| FaultEvent::permanent(0, FaultKind::LinkDead { resource: r }))
                .collect(),
            80_000,
        );
        match quick().simulate_with_faults(&w, &design, &faults) {
            Err(SimError::Stalled {
                blocked_resources, ..
            }) => {
                assert_eq!(blocked_resources.len(), net_resources);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let w = Workload::parsec_by_name("vips").unwrap();
        let design = SystemDesign::cryosp_cryobus_2way();
        let faults = FaultSchedule::from_events(
            vec![
                FaultEvent::permanent(1_000, FaultKind::LinkDead { resource: 1 }),
                FaultEvent::transient(
                    0,
                    40_000,
                    FaultKind::CoolingTransient { peak_kelvin: 110.0 },
                ),
            ],
            80_000,
        );
        let a = quick().simulate_with_faults(&w, &design, &faults).unwrap();
        let b = quick().simulate_with_faults(&w, &design, &faults).unwrap();
        assert_eq!(a, b);
    }
}
