//! The evaluated system designs (Table 4, "Evaluation setup").

use cryowire_device::Temperature;
use cryowire_memory::MemoryDesign;
use cryowire_noc::{CryoBus, Network, NocKind, RouterClass, RouterNetwork, SharedBus};
use cryowire_pipeline::CoreDesign;

/// The interconnect of a system design, with its clock domain.
#[derive(Debug, Clone)]
pub enum SystemNoc {
    /// Router-based mesh (directory coherence) at a given temperature and
    /// NoC clock (Table 4: 4 GHz at 300 K, 5.44 GHz at 77 K).
    Mesh {
        /// The network.
        network: RouterNetwork,
        /// NoC clock, GHz.
        clock_ghz: f64,
    },
    /// Conventional shared snooping bus (4 GHz domain).
    SharedBus {
        /// The bus.
        bus: SharedBus,
    },
    /// CryoBus (optionally interleaved), 4 GHz domain.
    CryoBus {
        /// The bus.
        bus: CryoBus,
    },
    /// Ideal zero-latency, contention-free snooping NoC (Fig. 17's
    /// normalisation).
    Ideal,
}

impl SystemNoc {
    /// The mesh of Table 4 at temperature `t`.
    #[must_use]
    pub fn mesh(t: Temperature) -> Self {
        let clock_ghz = if t.is_cryogenic() { 5.44 } else { 4.0 };
        SystemNoc::Mesh {
            network: RouterNetwork::new(NocKind::Mesh, 64, RouterClass::OneCycle, t)
                .expect("64-core mesh is valid"),
            clock_ghz,
        }
    }

    /// NoC clock in GHz.
    #[must_use]
    pub fn clock_ghz(&self) -> f64 {
        match self {
            SystemNoc::Mesh { clock_ghz, .. } => *clock_ghz,
            SystemNoc::SharedBus { bus } => bus.clock_ghz(),
            SystemNoc::CryoBus { bus } => bus.clock_ghz(),
            SystemNoc::Ideal => 4.0,
        }
    }

    /// Whether the design snoops (bus) or uses a directory (mesh).
    #[must_use]
    pub fn is_snooping(&self) -> bool {
        !matches!(self, SystemNoc::Mesh { .. })
    }

    /// The underlying [`Network`] for contention estimation, if any
    /// (`None` for the ideal NoC).
    #[must_use]
    pub fn network(&self) -> Option<&dyn Network> {
        match self {
            SystemNoc::Mesh { network, .. } => Some(network),
            SystemNoc::SharedBus { bus } => Some(bus),
            SystemNoc::CryoBus { bus } => Some(bus),
            SystemNoc::Ideal => None,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            SystemNoc::Mesh { network, .. } => network.name(),
            SystemNoc::SharedBus { bus } => bus.name(),
            SystemNoc::CryoBus { bus } => bus.name(),
            SystemNoc::Ideal => "Ideal NoC".to_string(),
        }
    }
}

/// A full system design: core + NoC + memory (one Table 4 row).
#[derive(Debug, Clone)]
pub struct SystemDesign {
    /// Display name (Table 4 row label).
    pub name: String,
    /// The core design.
    pub core: CoreDesign,
    /// The interconnect.
    pub noc: SystemNoc,
    /// The memory hierarchy.
    pub memory: MemoryDesign,
    /// Number of cores.
    pub cores: usize,
    /// Optional core-clock override, GHz (used by the Fig. 27 temperature
    /// sweep, which scales the CryoSP clock with temperature).
    pub frequency_override: Option<f64>,
}

impl SystemDesign {
    /// Baseline (300K, Mesh): 300 K cores, mesh, 300 K memory.
    #[must_use]
    pub fn baseline_300k() -> Self {
        SystemDesign {
            name: "Baseline (300K, Mesh)".into(),
            core: CoreDesign::Baseline300K,
            noc: SystemNoc::mesh(Temperature::ambient()),
            memory: MemoryDesign::mem_300k(),
            cores: 64,
            frequency_override: None,
        }
    }

    /// CHP-core (77K, Mesh): the state-of-the-art cryogenic baseline.
    #[must_use]
    pub fn chp_mesh() -> Self {
        SystemDesign {
            name: "CHP-core (77K, Mesh)".into(),
            core: CoreDesign::ChpCore,
            noc: SystemNoc::mesh(Temperature::liquid_nitrogen()),
            memory: MemoryDesign::mem_77k(),
            cores: 64,
            frequency_override: None,
        }
    }

    /// CryoSP (77K, Mesh).
    #[must_use]
    pub fn cryosp_mesh() -> Self {
        SystemDesign {
            name: "CryoSP (77K, Mesh)".into(),
            core: CoreDesign::CryoSp,
            noc: SystemNoc::mesh(Temperature::liquid_nitrogen()),
            memory: MemoryDesign::mem_77k(),
            cores: 64,
            frequency_override: None,
        }
    }

    /// CHP-core (77K, CryoBus).
    #[must_use]
    pub fn chp_cryobus() -> Self {
        SystemDesign {
            name: "CHP-core (77K, CryoBus)".into(),
            core: CoreDesign::ChpCore,
            noc: SystemNoc::CryoBus {
                bus: CryoBus::new(64, Temperature::liquid_nitrogen()),
            },
            memory: MemoryDesign::mem_77k(),
            cores: 64,
            frequency_override: None,
        }
    }

    /// CryoSP (77K, CryoBus): the paper's full proposal.
    #[must_use]
    pub fn cryosp_cryobus() -> Self {
        SystemDesign {
            name: "CryoSP (77K, CryoBus)".into(),
            core: CoreDesign::CryoSp,
            noc: SystemNoc::CryoBus {
                bus: CryoBus::new(64, Temperature::liquid_nitrogen()),
            },
            memory: MemoryDesign::mem_77k(),
            cores: 64,
            frequency_override: None,
        }
    }

    /// CryoSP (77K, CryoBus, 2-way): Section 7.1's interleaved variant.
    #[must_use]
    pub fn cryosp_cryobus_2way() -> Self {
        SystemDesign {
            name: "CryoSP (77K, CryoBus, 2-way)".into(),
            core: CoreDesign::CryoSp,
            noc: SystemNoc::CryoBus {
                bus: CryoBus::two_way(64, Temperature::liquid_nitrogen()),
            },
            memory: MemoryDesign::mem_77k(),
            cores: 64,
            frequency_override: None,
        }
    }

    /// The five Table 4 evaluation rows (Fig. 23's x-axis).
    #[must_use]
    pub fn evaluation_set() -> Vec<SystemDesign> {
        vec![
            SystemDesign::baseline_300k(),
            SystemDesign::chp_mesh(),
            SystemDesign::cryosp_mesh(),
            SystemDesign::chp_cryobus(),
            SystemDesign::cryosp_cryobus(),
        ]
    }

    /// Variant of a design with the shared bus instead (for Fig. 17).
    #[must_use]
    pub fn with_shared_bus(mut self, t: Temperature) -> Self {
        self.noc = SystemNoc::SharedBus {
            bus: SharedBus::new(self.cores, t),
        };
        self.name = format!("{} + shared bus", self.name);
        self
    }

    /// Variant with the ideal NoC (Fig. 17's reference).
    #[must_use]
    pub fn with_ideal_noc(mut self) -> Self {
        self.noc = SystemNoc::Ideal;
        self.name = format!("{} + ideal NoC", self.name);
        self
    }

    /// Core clock frequency, GHz (Table 3 spec unless overridden).
    #[must_use]
    pub fn core_frequency_ghz(&self) -> f64 {
        self.frequency_override
            .unwrap_or_else(|| self.core.spec().frequency_ghz)
    }

    /// Overrides the core clock (Fig. 27 sweep).
    #[must_use]
    pub fn with_core_frequency(mut self, ghz: f64) -> Self {
        self.frequency_override = Some(ghz);
        self
    }

    /// Replaces the memory hierarchy (Fig. 27 sweep).
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryDesign) -> Self {
        self.memory = memory;
        self
    }

    /// Replaces the interconnect (Fig. 27 sweep).
    #[must_use]
    pub fn with_noc(mut self, noc: SystemNoc) -> Self {
        self.noc = noc;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_set_matches_table4() {
        let set = SystemDesign::evaluation_set();
        assert_eq!(set.len(), 5);
        assert_eq!(set[0].core_frequency_ghz(), 4.0);
        assert_eq!(set[1].core_frequency_ghz(), 6.1);
        assert_eq!(set[4].core_frequency_ghz(), 7.84);
        assert!(set[4].noc.is_snooping());
        assert!(!set[0].noc.is_snooping());
    }

    #[test]
    fn mesh_clock_follows_table4() {
        assert_eq!(SystemNoc::mesh(Temperature::ambient()).clock_ghz(), 4.0);
        assert_eq!(
            SystemNoc::mesh(Temperature::liquid_nitrogen()).clock_ghz(),
            5.44
        );
    }

    #[test]
    fn ideal_noc_has_no_network() {
        assert!(SystemNoc::Ideal.network().is_none());
        assert!(SystemNoc::mesh(Temperature::ambient()).network().is_some());
    }

    #[test]
    fn variants_rename() {
        let d = SystemDesign::chp_mesh().with_ideal_noc();
        assert!(d.name.contains("ideal"));
    }
}
