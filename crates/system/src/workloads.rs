//! Workload profiles — the PARSEC 2.1 and SPEC CPU2006/2017 stand-ins.
//!
//! Each profile is the parameter vector our system model needs; values are
//! calibrated so the model reproduces the paper's published observations
//! (Fig. 3 CPI stacks, Fig. 18 injection bands, the per-workload speed-ups
//! discussed in Section 6.2 and 7.1). They are *characterisations* of the
//! real benchmarks, not the benchmarks themselves — see DESIGN.md's
//! substitution table.

/// Which benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// PARSEC 2.1 multi-threaded workloads (Fig. 3 / 17 / 23).
    Parsec,
    /// SPEC CPU2006 rate-mode copies (Fig. 24).
    Spec2006,
    /// SPEC CPU2017 rate-mode copies (Fig. 24).
    Spec2017,
    /// CloudSuite scale-out services (the top injection band of Fig. 18).
    CloudSuite,
}

/// A workload profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Core-bound CPI (no memory or sync stalls) of the 8-wide baseline.
    pub base_cpi: f64,
    /// L2 misses per kilo-instruction (traffic that reaches the NoC).
    pub l2_mpki: f64,
    /// Fraction of L3 accesses that miss to DRAM.
    pub l3_miss_ratio: f64,
    /// Synchronisation events per kilo-instruction: barriers, lock
    /// acquisitions, and shared-line ping-pongs — everything whose cost is
    /// a serialized coherence operation across the cores.
    pub barriers_per_kinst: f64,
    /// Memory-level parallelism: outstanding misses that overlap
    /// (divides exposed memory latency).
    pub mlp: f64,
}

impl Workload {
    /// The 13 PARSEC 2.1 workloads used throughout the evaluation.
    #[must_use]
    pub fn parsec() -> Vec<Workload> {
        let mk = |name, base_cpi, l2_mpki, l3_miss_ratio, barriers, mlp| Workload {
            name,
            suite: Suite::Parsec,
            base_cpi,
            l2_mpki,
            l3_miss_ratio,
            barriers_per_kinst: barriers,
            mlp,
        };
        vec![
            mk("blackscholes", 0.80, 1.5, 0.30, 0.10, 2.5),
            mk("bodytrack", 0.90, 4.5, 0.55, 0.27, 2.0),
            mk("canneal", 1.20, 4.5, 0.60, 0.18, 1.8),
            mk("dedup", 0.90, 3.0, 0.40, 0.20, 2.2),
            mk("facesim", 1.00, 3.0, 0.40, 0.25, 2.2),
            mk("ferret", 0.90, 4.8, 0.45, 0.43, 1.9),
            mk("fluidanimate", 0.90, 2.5, 0.35, 0.30, 2.2),
            mk("freqmine", 1.00, 2.0, 0.30, 0.12, 2.4),
            mk("raytrace", 0.90, 1.8, 0.30, 0.15, 2.4),
            mk("streamcluster", 0.80, 3.5, 0.40, 1.50, 2.0),
            mk("swaptions", 0.85, 5.0, 0.50, 1.09, 1.8),
            mk("vips", 0.95, 2.5, 0.35, 0.18, 2.3),
            mk("x264", 0.90, 4.6, 0.60, 0.22, 2.0),
        ]
    }

    /// The SPEC rate-mode workloads of Fig. 24 (64 copies, aggressive
    /// stride prefetcher). The prefetcher multiplies NoC traffic; see
    /// [`Workload::with_prefetcher`].
    #[must_use]
    pub fn spec() -> Vec<Workload> {
        let mk = |name, suite, base_cpi, l2_mpki, l3_miss_ratio| Workload {
            name,
            suite,
            base_cpi,
            l2_mpki,
            l3_miss_ratio,
            barriers_per_kinst: 0.0,
            mlp: 2.2,
        };
        vec![
            mk("perlbench", Suite::Spec2006, 0.80, 2.0, 0.30),
            mk("bzip2", Suite::Spec2006, 0.90, 3.0, 0.35),
            mk("gcc", Suite::Spec2006, 0.95, 14.0, 0.45),
            mk("mcf", Suite::Spec2006, 1.40, 7.0, 0.65),
            mk("cactusADM", Suite::Spec2006, 1.10, 15.0, 0.60),
            mk("libquantum", Suite::Spec2006, 0.90, 16.0, 0.70),
            mk("omnetpp", Suite::Spec2006, 1.10, 6.0, 0.50),
            mk("xalancbmk", Suite::Spec2006, 1.00, 13.0, 0.45),
            mk("lbm", Suite::Spec2017, 1.00, 7.0, 0.70),
            mk("x264_r", Suite::Spec2017, 0.85, 3.0, 0.45),
            mk("deepsjeng", Suite::Spec2017, 0.90, 2.0, 0.35),
            mk("mcf_r", Suite::Spec2017, 1.30, 6.5, 0.60),
        ]
    }

    /// Applies the Section 7.1 aggressive stride prefetcher: prefetches
    /// fire even on cache hits, multiplying NoC traffic by `factor`
    /// (the useless-prefetch amplification) while hiding a share of the
    /// remaining memory latency (higher effective MLP).
    #[must_use]
    pub fn with_prefetcher(mut self, factor: f64) -> Self {
        self.l2_mpki *= factor;
        self.mlp *= 1.3;
        self
    }

    /// The CloudSuite scale-out services of Fig. 18's highest injection
    /// band: request-serving workloads with large instruction footprints
    /// and heavy last-level-cache traffic (Ferdman et al., ASPLOS'12).
    #[must_use]
    pub fn cloudsuite() -> Vec<Workload> {
        let mk = |name, base_cpi, l2_mpki, l3_miss_ratio, sync| Workload {
            name,
            suite: Suite::CloudSuite,
            base_cpi,
            l2_mpki,
            l3_miss_ratio,
            barriers_per_kinst: sync,
            mlp: 1.8,
        };
        vec![
            mk("data-serving", 1.3, 14.0, 0.55, 0.05),
            mk("web-search", 1.2, 12.0, 0.45, 0.04),
            mk("media-streaming", 1.0, 16.0, 0.60, 0.02),
            mk("data-analytics", 1.1, 13.0, 0.50, 0.10),
        ]
    }

    /// Look up a PARSEC workload by name.
    #[must_use]
    pub fn parsec_by_name(name: &str) -> Option<Workload> {
        Workload::parsec().into_iter().find(|w| w.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_parsec_workloads() {
        assert_eq!(Workload::parsec().len(), 13);
    }

    #[test]
    fn streamcluster_is_barrier_heavy() {
        // Section 6.2: streamcluster contains a large number of barriers.
        let sc = Workload::parsec_by_name("streamcluster").unwrap();
        let max_other = Workload::parsec()
            .iter()
            .filter(|w| w.name != "streamcluster")
            .map(|w| w.barriers_per_kinst)
            .fold(0.0, f64::max);
        assert!(sc.barriers_per_kinst > max_other);
    }

    #[test]
    fn memory_bound_workloads_have_high_mpki() {
        // Section 6.2 singles out bodytrack, ferret, swaptions as
        // cache/memory-access-heavy and bodytrack, x264 as memory-bounded.
        let parsec = Workload::parsec();
        let avg: f64 = parsec.iter().map(|w| w.l2_mpki).sum::<f64>() / parsec.len() as f64;
        for name in ["bodytrack", "ferret", "swaptions", "x264"] {
            let w = Workload::parsec_by_name(name).unwrap();
            assert!(w.l2_mpki > avg, "{name} should be above-average traffic");
        }
    }

    #[test]
    fn profiles_are_physical() {
        for w in Workload::parsec().into_iter().chain(Workload::spec()) {
            assert!(w.base_cpi > 0.0);
            assert!(w.l2_mpki >= 0.0);
            assert!((0.0..=1.0).contains(&w.l3_miss_ratio));
            assert!(w.mlp >= 1.0);
        }
    }

    #[test]
    fn prefetcher_amplifies_traffic() {
        let w = Workload::spec()[0].clone();
        let p = w.clone().with_prefetcher(2.0);
        assert!((p.l2_mpki - 2.0 * w.l2_mpki).abs() < 1e-12);
        assert!(p.mlp > w.mlp);
    }

    #[test]
    fn cloudsuite_is_the_heaviest_band() {
        // Fig. 18 orders the bands PARSEC < SPEC < CloudSuite by
        // injection; the profiles must respect that ordering on average.
        let avg = |ws: &[Workload]| ws.iter().map(|w| w.l2_mpki).sum::<f64>() / ws.len() as f64;
        let parsec = Workload::parsec();
        let cloud = Workload::cloudsuite();
        assert!(avg(&cloud) > 3.0 * avg(&parsec));
        assert_eq!(cloud.len(), 4);
    }

    #[test]
    fn spec_has_the_contention_bound_four() {
        // Section 7.1 names cactusADM, gcc, xalancbmk, libquantum as the
        // workloads where CryoBus contention shows.
        let names: Vec<&str> = Workload::spec().iter().map(|w| w.name).collect();
        for n in ["cactusADM", "gcc", "xalancbmk", "libquantum"] {
            assert!(names.contains(&n), "{n} missing");
        }
    }
}
