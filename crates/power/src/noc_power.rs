//! NoC power model (Orion 2.0 substitute, Fig. 22).
//!
//! Dynamic energy per memory access is built structurally from
//! per-component energies (link hops, router traversals, arbitration,
//! CryoBus's cross-link control), then scaled by `V²·f`. Static power is
//! router-transistor-dominated at 300 K and collapses at 77 K; cryogenic
//! designs pay the cooling overhead on every watt.
//!
//! Component energy units (relative to one 2 mm link hop):
//!
//! | component | energy | rationale |
//! |---|---|---|
//! | link hop | 1.0 | 2 mm global wire charge |
//! | router traversal | 4.6 | buffers + crossbar + allocators per hop |
//! | bus arbitration | 5.0 | request/grant wires + matrix arbiter |
//! | CryoBus control | 20.0 | cross-link switch programming across the die |
//!
//! With the Fig. 15 path lengths (mesh ≈ 5.33 hops × 2 packets, shared-bus
//! broadcast 30 hops × 2 transfers, CryoBus 12-hop broadcast + ~6-hop
//! directed response) these reproduce Fig. 22's reductions: CryoBus
//! −57.2 % vs 300 K Mesh, −40.5 % vs 77 K Mesh, −30.7 % vs 77 K Shared
//! bus, all including cooling.

use cryowire_device::{CoolingModel, MosfetModel, OperatingPoint, Temperature};

/// Dynamic share of the 300 K mesh NoC's device power. Orion-era 45 nm
/// router power is strongly leakage-dominated at 300 K, which is what
/// lets the paper say the "300K-dominant static power is almost
/// eliminated" at 77 K.
const NOC_DYN_FRACTION_300K: f64 = 0.164;

/// Energy of one router traversal relative to a link hop.
const ROUTER_ENERGY: f64 = 4.6;

/// Energy of one bus arbitration relative to a link hop.
const ARBITER_ENERGY: f64 = 5.0;

/// Energy of one CryoBus cross-link control broadcast.
const CONTROL_ENERGY: f64 = 20.0;

/// Static-power capacitance factors relative to the mesh's 64 routers.
const STATIC_CAP_MESH: f64 = 1.0;
const STATIC_CAP_SHARED_BUS: f64 = 0.15;
const STATIC_CAP_CRYOBUS: f64 = 0.20;

/// The Fig. 22 NoC design points (voltage optimization applied at 77 K).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NocDesignPower {
    /// 64-core mesh at 300 K, 4 GHz, 1.0 V / 0.468 V.
    Mesh300K,
    /// 64-core mesh at 77 K, 5.44 GHz, 0.55 V / 0.225 V.
    Mesh77K,
    /// Conventional shared bus at 77 K, 4 GHz domain.
    SharedBus77K,
    /// CryoBus at 77 K, 4 GHz domain.
    CryoBus77K,
}

impl NocDesignPower {
    /// All Fig. 22 designs in figure order.
    pub const ALL: [NocDesignPower; 4] = [
        NocDesignPower::Mesh300K,
        NocDesignPower::Mesh77K,
        NocDesignPower::SharedBus77K,
        NocDesignPower::CryoBus77K,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NocDesignPower::Mesh300K => "300K Mesh",
            NocDesignPower::Mesh77K => "77K Mesh",
            NocDesignPower::SharedBus77K => "77K Shared bus",
            NocDesignPower::CryoBus77K => "CryoBus",
        }
    }

    fn temperature(self) -> Temperature {
        match self {
            NocDesignPower::Mesh300K => Temperature::ambient(),
            _ => Temperature::liquid_nitrogen(),
        }
    }

    fn operating_point(self) -> OperatingPoint {
        match self {
            NocDesignPower::Mesh300K => OperatingPoint {
                v_dd: 1.0,
                v_th: 0.468,
            },
            // Table 4: the 77 K NoC/LLC voltage domain.
            _ => OperatingPoint::noc_77k(),
        }
    }

    fn frequency_ghz(self) -> f64 {
        match self {
            NocDesignPower::Mesh77K => 5.44,
            _ => 4.0,
        }
    }

    /// Dynamic energy per memory access in link-hop units, from the
    /// structural path model.
    #[must_use]
    pub fn dynamic_energy_units(self) -> f64 {
        match self {
            // Request + response packets, 5.33 average hops each, paying a
            // router and a link per hop.
            NocDesignPower::Mesh300K | NocDesignPower::Mesh77K => {
                2.0 * 5.33 * (1.0 + ROUTER_ENERGY)
            }
            // Request broadcast + data broadcast over the 30-hop spine,
            // plus two arbitrations.
            NocDesignPower::SharedBus77K => 2.0 * 30.0 + 2.0 * ARBITER_ENERGY,
            // 12-hop request broadcast, ~6-hop directed data response
            // (dynamic link connection avoids wasteful broadcasting),
            // two arbitrations + control distribution.
            NocDesignPower::CryoBus77K => 12.0 + 6.0 + 2.0 * ARBITER_ENERGY + CONTROL_ENERGY,
        }
    }

    fn static_cap(self) -> f64 {
        match self {
            NocDesignPower::Mesh300K | NocDesignPower::Mesh77K => STATIC_CAP_MESH,
            NocDesignPower::SharedBus77K => STATIC_CAP_SHARED_BUS,
            NocDesignPower::CryoBus77K => STATIC_CAP_CRYOBUS,
        }
    }
}

/// The NoC power model, normalized so the 300 K mesh totals 1.0.
#[derive(Debug, Clone)]
pub struct NocPowerModel {
    mosfet: MosfetModel,
    cooling: CoolingModel,
}

impl NocPowerModel {
    /// Creates the model.
    #[must_use]
    pub fn new() -> Self {
        NocPowerModel {
            mosfet: MosfetModel::industry_45nm(),
            cooling: CoolingModel::paper_default(),
        }
    }

    /// Device power (dynamic + static), normalized to the 300 K mesh.
    #[must_use]
    pub fn device_power(&self, design: NocDesignPower) -> f64 {
        let ref_design = NocDesignPower::Mesh300K;
        let dyn_ref = ref_design.dynamic_energy_units();
        let point = design.operating_point();
        let ref_point = ref_design.operating_point();

        let v_ratio = point.v_dd / ref_point.v_dd;
        let dynamic = NOC_DYN_FRACTION_300K
            * (design.dynamic_energy_units() / dyn_ref)
            * v_ratio
            * v_ratio
            * (design.frequency_ghz() / ref_design.frequency_ghz());

        let leak_ref =
            self.mosfet
                .leakage_factor(ref_design.temperature(), ref_point.v_dd, ref_point.v_th);
        let leak = self
            .mosfet
            .leakage_factor(design.temperature(), point.v_dd, point.v_th);
        let static_ =
            (1.0 - NOC_DYN_FRACTION_300K) * design.static_cap() * (leak / leak_ref) * v_ratio;

        dynamic + static_
    }

    /// Total power including the cooling overhead, normalized to the
    /// 300 K mesh's total.
    #[must_use]
    pub fn total_power(&self, design: NocDesignPower) -> f64 {
        self.device_power(design) * self.cooling.total_power_multiplier(design.temperature())
    }
}

impl Default for NocPowerModel {
    fn default() -> Self {
        NocPowerModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NocPowerModel {
        NocPowerModel::new()
    }

    #[test]
    fn mesh_300k_is_the_unit() {
        let p = model().total_power(NocDesignPower::Mesh300K);
        assert!((p - 1.0).abs() < 1e-9, "300 K mesh total = {p}");
    }

    #[test]
    fn fig22_cryobus_vs_300k_mesh() {
        // Paper: CryoBus consumes 57.2 % less power than 300 K Mesh.
        let m = model();
        let reduction = 1.0 - m.total_power(NocDesignPower::CryoBus77K);
        assert!(
            (reduction - 0.572).abs() < 0.06,
            "CryoBus reduction vs 300 K mesh = {reduction}"
        );
    }

    #[test]
    fn fig22_cryobus_vs_77k_mesh() {
        // Paper: 40.5 % less than 77 K Mesh.
        let m = model();
        let reduction = 1.0
            - m.total_power(NocDesignPower::CryoBus77K) / m.total_power(NocDesignPower::Mesh77K);
        assert!(
            (reduction - 0.405).abs() < 0.06,
            "CryoBus reduction vs 77 K mesh = {reduction}"
        );
    }

    #[test]
    fn fig22_cryobus_vs_77k_shared_bus() {
        // Paper: 30.7 % less than the 77 K Shared bus.
        let m = model();
        let reduction = 1.0
            - m.total_power(NocDesignPower::CryoBus77K)
                / m.total_power(NocDesignPower::SharedBus77K);
        assert!(
            (reduction - 0.307).abs() < 0.06,
            "CryoBus reduction vs 77 K shared bus = {reduction}"
        );
    }

    #[test]
    fn static_power_eliminated_at_77k() {
        // Section 5.2.3: "the 300K-dominant static power is almost
        // eliminated at 77K".
        let m = model();
        let mesh77 = m.device_power(NocDesignPower::Mesh77K);
        let dyn_only = NOC_DYN_FRACTION_300K * (0.55_f64 / 1.0).powi(2) * (5.44 / 4.0);
        assert!(
            (mesh77 - dyn_only).abs() / mesh77 < 0.02,
            "77 K mesh should be essentially all-dynamic"
        );
    }

    #[test]
    fn cryobus_has_lowest_total() {
        let m = model();
        let cryo = m.total_power(NocDesignPower::CryoBus77K);
        for d in NocDesignPower::ALL {
            assert!(m.total_power(d) >= cryo, "{} below CryoBus", d.name());
        }
    }

    #[test]
    fn dynamic_energy_ordering_is_structural() {
        // Directed CryoBus transfers switch less wire than the
        // broadcast-everything shared bus.
        assert!(
            NocDesignPower::CryoBus77K.dynamic_energy_units()
                < NocDesignPower::SharedBus77K.dynamic_energy_units()
        );
    }
}
