//! Total-cost-of-ownership model for the cryogenic computer
//! (Section 2.3 / Section 7.4).
//!
//! The paper's cooling section argues the LN-recycling Stinger systems
//! make the *recurring cooling power* the dominant cost: the cryo-cooler
//! and the initial liquid nitrogen are one-time expenses amortized over
//! the service life. This module makes that argument quantitative and
//! exposes the TCO/performance metric Section 7.4 names as the future
//! optimization target.

use cryowire_device::{CoolingModel, Temperature};

/// Cost assumptions, all in dollars (representative 2020-era figures;
/// the *structure* is what matters, as the paper notes the sweet spot
/// shifts with the exact numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoAssumptions {
    /// Electricity price, $ per kWh.
    pub dollars_per_kwh: f64,
    /// Cryo-cooler capital cost per watt of heat lift at 77 K.
    pub cooler_dollars_per_watt: f64,
    /// One-time liquid-nitrogen fill per kW of device power.
    pub ln_fill_dollars_per_kw: f64,
    /// Service life over which one-time costs amortize, years.
    pub service_years: f64,
}

impl Default for TcoAssumptions {
    fn default() -> Self {
        TcoAssumptions {
            dollars_per_kwh: 0.10,
            cooler_dollars_per_watt: 2.0,
            ln_fill_dollars_per_kw: 150.0,
            service_years: 5.0,
        }
    }
}

/// A TCO evaluation for one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoBreakdown {
    /// Device energy cost over the service life, $.
    pub device_energy: f64,
    /// Cooling energy cost over the service life, $.
    pub cooling_energy: f64,
    /// Amortized one-time costs (cooler + LN fill), $.
    pub one_time: f64,
}

impl TcoBreakdown {
    /// Total cost, $.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.device_energy + self.cooling_energy + self.one_time
    }

    /// Share of the total that is recurring cooling power.
    #[must_use]
    pub fn cooling_share(&self) -> f64 {
        self.cooling_energy / self.total()
    }
}

/// The TCO model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoModel {
    assumptions: TcoAssumptions,
    cooling: CoolingModel,
}

impl TcoModel {
    /// Creates the model with the paper's cooling assumptions.
    #[must_use]
    pub fn new(assumptions: TcoAssumptions) -> Self {
        TcoModel {
            assumptions,
            cooling: CoolingModel::paper_default(),
        }
    }

    /// TCO of running `device_watts` of silicon at temperature `t` for
    /// the service life.
    #[must_use]
    pub fn evaluate(&self, device_watts: f64, t: Temperature) -> TcoBreakdown {
        let a = self.assumptions;
        let hours = a.service_years * 365.25 * 24.0;
        let kwh = |w: f64| w * hours / 1_000.0;
        let co = self.cooling.overhead(t);
        let cooling_watts = device_watts * co;
        let one_time = if t.is_cryogenic() || co > 0.0 {
            device_watts * a.cooler_dollars_per_watt
                + device_watts / 1_000.0 * a.ln_fill_dollars_per_kw
        } else {
            0.0
        };
        TcoBreakdown {
            device_energy: kwh(device_watts) * a.dollars_per_kwh,
            cooling_energy: kwh(cooling_watts) * a.dollars_per_kwh,
            one_time,
        }
    }

    /// TCO per unit performance — Section 7.4's suggested metric.
    #[must_use]
    pub fn tco_per_performance(&self, device_watts: f64, t: Temperature, performance: f64) -> f64 {
        self.evaluate(device_watts, t).total() / performance
    }
}

impl Default for TcoModel {
    fn default() -> Self {
        TcoModel::new(TcoAssumptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TcoModel {
        TcoModel::default()
    }

    #[test]
    fn recurring_cooling_dominates_cryogenic_tco() {
        // Section 6.1.2: "the recurring cooling-power cost dominates the
        // overall cooling cost" — one-time cooler + LN must be small next
        // to five years of 9.65x cooling power.
        let b = model().evaluate(1_000.0, Temperature::liquid_nitrogen());
        assert!(b.cooling_energy > 5.0 * b.one_time);
        assert!(
            b.cooling_share() > 0.75,
            "cooling share = {}",
            b.cooling_share()
        );
    }

    #[test]
    fn ambient_has_no_cooling_cost() {
        let b = model().evaluate(1_000.0, Temperature::ambient());
        assert_eq!(b.cooling_energy, 0.0);
        assert_eq!(b.one_time, 0.0);
        assert!(b.device_energy > 0.0);
    }

    #[test]
    fn cryosp_system_wins_on_tco_per_performance() {
        // The paper's value proposition in cost terms: CryoSP+CryoBus at
        // 77 K delivers 3.82x the performance at ~1x the total power of
        // the 300 K baseline, so TCO/perf must improve.
        let m = model();
        // 300 K baseline: 1000 W device, performance 1.
        let hot = m.tco_per_performance(1_000.0, Temperature::ambient(), 1.0);
        // CryoSP system: ~94 W device (Table 3: 0.093 core power × same
        // budget) paying 9.65x cooling, performance 3.82.
        let cold = m.tco_per_performance(94.0, Temperature::liquid_nitrogen(), 3.82);
        assert!(
            cold < hot * 0.5,
            "cryogenic TCO/perf = {cold} vs ambient {hot}"
        );
    }

    #[test]
    fn colder_is_costlier_at_equal_performance() {
        let m = model();
        let t100 = m.evaluate(100.0, Temperature::new(100.0).unwrap()).total();
        let t77 = m.evaluate(100.0, Temperature::liquid_nitrogen()).total();
        assert!(t77 > t100);
    }
}
