//! Orion-style per-component router energy and area decomposition.
//!
//! The aggregate NoC power model in [`crate::noc_power`] charges 4.6
//! link-hop energy units per router traversal and a large static share;
//! this module breaks those aggregates into Orion 2.0's component
//! structure (input buffers, crossbar, allocators, clock) so the
//! constants are auditable, and adds the area estimates Orion reports.

/// A router/bus component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Input buffers (4 VC × 3 flits per port).
    Buffers,
    /// The 5x5 crossbar.
    Crossbar,
    /// VC + switch allocators.
    Allocators,
    /// Clock tree and control.
    Clock,
    /// One 2 mm inter-router link (repeaters included).
    Link,
}

impl Component {
    /// All router-internal components.
    pub const ROUTER: [Component; 4] = [
        Component::Buffers,
        Component::Crossbar,
        Component::Allocators,
        Component::Clock,
    ];

    /// Dynamic energy per traversal, in link-hop units (one 2 mm link
    /// charge = 1.0). Orion-era 45 nm routers are buffer-dominated.
    #[must_use]
    pub fn dynamic_energy_units(self) -> f64 {
        match self {
            Component::Buffers => 2.2,
            Component::Crossbar => 1.3,
            Component::Allocators => 0.6,
            Component::Clock => 0.5,
            Component::Link => 1.0,
        }
    }

    /// Static (leakage) weight at 300 K, relative units.
    #[must_use]
    pub fn static_weight(self) -> f64 {
        match self {
            Component::Buffers => 3.0,
            Component::Crossbar => 1.0,
            Component::Allocators => 0.6,
            Component::Clock => 0.4,
            Component::Link => 0.3, // repeater banks
        }
    }

    /// Area, mm² (45 nm-class, 128-bit datapath).
    #[must_use]
    pub fn area_mm2(self) -> f64 {
        match self {
            Component::Buffers => 0.12,
            Component::Crossbar => 0.06,
            Component::Allocators => 0.02,
            Component::Clock => 0.02,
            Component::Link => 0.01,
        }
    }
}

/// Per-router totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterBudget {
    /// Dynamic energy per traversal, link-hop units.
    pub dynamic_units: f64,
    /// Static weight at 300 K.
    pub static_weight: f64,
    /// Area, mm².
    pub area_mm2: f64,
}

/// Sums the router-internal components.
#[must_use]
pub fn router_budget() -> RouterBudget {
    let mut b = RouterBudget {
        dynamic_units: 0.0,
        static_weight: 0.0,
        area_mm2: 0.0,
    };
    for c in Component::ROUTER {
        b.dynamic_units += c.dynamic_energy_units();
        b.static_weight += c.static_weight();
        b.area_mm2 += c.area_mm2();
    }
    b
}

/// NoC-level area estimate, mm².
#[must_use]
pub fn noc_area_mm2(routers: usize, links: usize) -> f64 {
    routers as f64 * router_budget().area_mm2 + links as f64 * Component::Link.area_mm2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_energy_matches_aggregate_model() {
        // noc_power charges ROUTER_ENERGY = 4.6 link units per traversal;
        // the component breakdown must sum to the same figure.
        let b = router_budget();
        assert!(
            (b.dynamic_units - 4.6).abs() < 1e-9,
            "component sum = {}",
            b.dynamic_units
        );
    }

    #[test]
    fn buffers_dominate() {
        // Orion's classic finding for VC routers.
        let b = Component::Buffers;
        for c in [Component::Crossbar, Component::Allocators, Component::Clock] {
            assert!(b.dynamic_energy_units() > c.dynamic_energy_units());
            assert!(b.static_weight() > c.static_weight());
        }
    }

    #[test]
    fn mesh_area_dwarfs_bus_area() {
        // 64 routers + 224 directed links vs CryoBus's wiring + switches
        // (≈ the link budget of its 21 tree segments).
        let mesh = noc_area_mm2(64, 224);
        let cryobus = noc_area_mm2(0, 21) + 0.05; // switches + arbiter
        assert!(
            mesh > 10.0 * cryobus,
            "mesh {mesh} mm² vs CryoBus {cryobus} mm²"
        );
    }

    #[test]
    fn static_weights_are_router_heavy() {
        // The Fig. 22 story: eliminating routers eliminates most of the
        // 300 K static power.
        let router_static = router_budget().static_weight;
        assert!(router_static > 10.0 * Component::Link.static_weight());
    }
}
