//! Core power model (McPAT substitute, Table 3's power rows).
//!
//! Normalized to the 300 K baseline core's device power = 1.0:
//!
//! * dynamic ∝ `C_eff · (V/1.25)² · (f/4 GHz)`, where `C_eff` captures the
//!   microarchitecture (superpipelining adds flip-flops, CryoCore halves
//!   the width and shrinks the OoO structures — Table 3 implies
//!   `C_CryoCore ≈ 0.222`),
//! * static ∝ leakage(T, V, V_th), which vanishes at 77 K,
//! * total = device × (1 + CO(T)) from the cooling model.

use cryowire_device::{CoolingModel, MosfetModel, OperatingPoint, Temperature};
use cryowire_pipeline::CoreDesign;

/// Dynamic share of the 300 K baseline core's device power. Table 3's own
/// chain (1.61 = the 4 → 6.4 GHz frequency ratio for the superpipelined
/// core) implies the paper's McPAT core power is essentially
/// dynamic-dominated, so we calibrate a 94/6 split.
const CORE_DYN_FRACTION_300K: f64 = 0.94;

/// Extra switched capacitance from the three superpipeline flip-flop
/// ranks (calibrated so 77K-Superpipeline core power lands on Table 3's
/// 1.61 = (4 → 6.4 GHz) × 1.07).
const SUPERPIPELINE_CAP: f64 = 1.07;

/// Switched-capacitance factor of the CryoCore width/structure halving
/// (Table 3: 0.3575 / 1.61 ≈ 0.222).
const CRYOCORE_CAP: f64 = 0.222;

/// Device/cooling/total decomposition, normalized to the 300 K baseline
/// device power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Dynamic device power.
    pub dynamic: f64,
    /// Static (leakage) device power.
    pub static_: f64,
    /// Cooling power (CO × device).
    pub cooling: f64,
}

impl PowerBreakdown {
    /// Device power (dynamic + static).
    #[must_use]
    pub fn device(&self) -> f64 {
        self.dynamic + self.static_
    }

    /// Total power including cooling.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.device() + self.cooling
    }
}

/// The core power model.
#[derive(Debug, Clone)]
pub struct CorePowerModel {
    mosfet: MosfetModel,
    cooling: CoolingModel,
}

impl CorePowerModel {
    /// Creates the model with the paper's device and cooling models.
    #[must_use]
    pub fn new() -> Self {
        CorePowerModel {
            mosfet: MosfetModel::industry_45nm(),
            cooling: CoolingModel::paper_default(),
        }
    }

    /// Switched-capacitance factor of a core design.
    #[must_use]
    pub fn capacitance_factor(design: CoreDesign) -> f64 {
        match design {
            CoreDesign::Baseline300K => 1.0,
            CoreDesign::Superpipeline77K => SUPERPIPELINE_CAP,
            CoreDesign::SuperpipelineCryoCore77K | CoreDesign::CryoSp => {
                SUPERPIPELINE_CAP * CRYOCORE_CAP
            }
            CoreDesign::ChpCore => CRYOCORE_CAP,
        }
    }

    /// Power of a core design at its Table 3 operating point and clock.
    #[must_use]
    pub fn power(&self, design: CoreDesign) -> PowerBreakdown {
        let spec = design.spec();
        let t = Temperature::new(spec.temperature_k).expect("Table 3 temperatures are valid");
        self.power_at(
            design,
            t,
            OperatingPoint {
                v_dd: spec.v_dd,
                v_th: spec.v_th,
            },
            spec.frequency_ghz,
        )
    }

    /// Power of `design`'s microarchitecture at an arbitrary temperature,
    /// voltage point and clock (used by the Fig. 27 temperature sweep).
    #[must_use]
    pub fn power_at(
        &self,
        design: CoreDesign,
        t: Temperature,
        point: OperatingPoint,
        frequency_ghz: f64,
    ) -> PowerBreakdown {
        let cap = Self::capacitance_factor(design);
        let v_ratio = point.v_dd / self.mosfet.v_dd_nominal();
        let dynamic = CORE_DYN_FRACTION_300K * cap * v_ratio * v_ratio * (frequency_ghz / 4.0);
        let leak = self.mosfet.leakage_factor(t, point.v_dd, point.v_th);
        let static_ = (1.0 - CORE_DYN_FRACTION_300K) * cap * leak * v_ratio;
        let device = dynamic + static_;
        PowerBreakdown {
            dynamic,
            static_,
            cooling: self.cooling.overhead(t) * device,
        }
    }
}

impl Default for CorePowerModel {
    fn default() -> Self {
        CorePowerModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CorePowerModel {
        CorePowerModel::new()
    }

    #[test]
    fn baseline_device_power_is_unity() {
        let p = model().power(CoreDesign::Baseline300K);
        assert!(
            (p.device() - 1.0).abs() < 1e-9,
            "baseline device = {}",
            p.device()
        );
        assert_eq!(p.cooling, 0.0);
    }

    #[test]
    fn superpipeline_core_power_matches_table3() {
        // Table 3: 1.61 (and 17.15 total with cooling).
        let p = model().power(CoreDesign::Superpipeline77K);
        assert!(
            (p.device() - 1.61).abs() < 0.15,
            "superpipeline device power = {}",
            p.device()
        );
        assert!((p.total() - 17.15).abs() < 1.6, "total = {}", p.total());
    }

    #[test]
    fn cryocore_halving_matches_table3() {
        // Table 3: 0.3575.
        let p = model().power(CoreDesign::SuperpipelineCryoCore77K);
        assert!(
            (p.device() - 0.3575).abs() < 0.04,
            "superpipeline+CryoCore device power = {}",
            p.device()
        );
    }

    #[test]
    fn cryosp_device_power_near_table3() {
        // Table 3: 0.093 (total 1.0). Our V² dynamic model lands ~0.115;
        // the paper's McPAT runs see extra savings (activity/short-circuit)
        // we do not model — documented in EXPERIMENTS.md.
        let p = model().power(CoreDesign::CryoSp);
        assert!(
            (p.device() - 0.093).abs() < 0.035,
            "CryoSP device power = {}",
            p.device()
        );
        assert!(p.total() < 1.7, "CryoSP total = {}", p.total());
    }

    #[test]
    fn chp_device_power_near_table3() {
        let p = model().power(CoreDesign::ChpCore);
        assert!(
            (p.device() - 0.093).abs() < 0.04,
            "CHP device power = {}",
            p.device()
        );
    }

    #[test]
    fn leakage_vanishes_at_77k() {
        for d in [
            CoreDesign::CryoSp,
            CoreDesign::ChpCore,
            CoreDesign::Superpipeline77K,
        ] {
            let p = model().power(d);
            assert!(p.static_ < 1e-6, "{:?} static = {}", d, p.static_);
        }
    }

    #[test]
    fn cooling_is_9_65x_device_at_77k() {
        let p = model().power(CoreDesign::CryoSp);
        assert!((p.cooling / p.device() - 9.65).abs() < 0.01);
    }

    #[test]
    fn low_vth_at_300k_explodes_static_power() {
        let m = model();
        let p = m.power_at(
            CoreDesign::ChpCore,
            Temperature::ambient(),
            OperatingPoint::chp_core(),
            6.1,
        );
        assert!(p.static_ > 1.0, "300 K low-Vth static = {}", p.static_);
    }
}
