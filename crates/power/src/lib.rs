//! # cryowire-power
//!
//! Power modelling for cores and NoCs at 300 K and 77 K — the
//! McPAT + Orion 2.0 + cryo-MOSFET substitute (Section 6.1.2, Fig. 22,
//! Table 3's power rows).
//!
//! Dynamic power follows `C·V²·f` with per-design switched-capacitance
//! factors; static power follows the MOSFET leakage model (collapsing
//! exponentially at 77 K); and every cryogenic watt pays the cooling
//! overhead `CO(T)` of the device crate's [`cryowire_device::CoolingModel`].
//!
//! ```
//! use cryowire_power::{NocDesignPower, NocPowerModel};
//! let model = NocPowerModel::new();
//! let mesh300 = model.total_power(NocDesignPower::Mesh300K);
//! let cryobus = model.total_power(NocDesignPower::CryoBus77K);
//! assert!(cryobus < mesh300 * 0.5); // Fig. 22: −57.2 % incl. cooling
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod core_power;
pub mod noc_power;
pub mod orion;
pub mod tco;

pub use core_power::{CorePowerModel, PowerBreakdown};
pub use noc_power::{NocDesignPower, NocPowerModel};
pub use orion::{noc_area_mm2, router_budget, Component, RouterBudget};
pub use tco::{TcoAssumptions, TcoBreakdown, TcoModel};
