//! Hybrid CryoBus for 64+ cores (Section 7.3, Fig. 26).
//!
//! Four 64-core CryoBus clusters are stitched by a small global mesh and a
//! directory-based protocol (the hybrid gives up snooping). Intra-cluster
//! traffic uses the local CryoBus; inter-cluster traffic crosses the
//! source cluster's bus, hops the global mesh, and finishes on the
//! destination cluster's bus.

use cryowire_device::Temperature;

use crate::cryobus::CryoBus;
use crate::error::NocError;
use crate::link::LinkModel;
use crate::sim::{Network, PacketLeg};
use crate::topology::Topology;

/// The 256-core hybrid CryoBus.
#[derive(Debug, Clone)]
pub struct HybridCryoBus {
    topo: Topology,
    cluster: CryoBus,
    clusters: usize,
    global_link_cycles: u64,
    ways: usize,
}

impl HybridCryoBus {
    /// Builds the Fig. 26 configuration: `clusters` CryoBus clusters of
    /// `cluster_nodes` cores each, `ways`-way interleaved, at `t`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] for invalid cluster geometry.
    pub fn try_new(
        clusters: usize,
        cluster_nodes: usize,
        t: Temperature,
        ways: usize,
    ) -> Result<Self, NocError> {
        if clusters != 4 {
            return Err(NocError::InvalidNodeCount {
                nodes: clusters,
                requirement: "the hybrid design uses a 2x2 global mesh of 4 clusters",
            });
        }
        let topo = Topology::square(clusters * cluster_nodes)?;
        let cluster = CryoBus::try_new(cluster_nodes, t, ways)?;
        // Global mesh links span a cluster width: 8 tiles = 16 mm.
        let link = LinkModel::new();
        let cluster_side = Topology::square(cluster_nodes)?.side();
        let global_link_cycles = link.traversal_cycles(cluster_side, t, 4.0) as u64;
        Ok(HybridCryoBus {
            topo,
            cluster,
            clusters,
            global_link_cycles,
            ways,
        })
    }

    /// The paper's 256-core hybrid at 77 K.
    ///
    /// # Panics
    ///
    /// Never panics for the fixed valid configuration.
    #[must_use]
    pub fn c256(t: Temperature, ways: usize) -> Self {
        HybridCryoBus::try_new(4, 64, t, ways).expect("4x64 hybrid is valid")
    }

    /// Which cluster a core belongs to.
    #[must_use]
    fn cluster_of(&self, core: usize) -> usize {
        // 2x2 arrangement of 8x8 clusters on the 16x16 die.
        let (x, y) = self.topo.coords(core);
        let cs = self.topo.side() / 2;
        (y / cs) * 2 + (x / cs)
    }

    /// Fraction of traffic that stays within a cluster under uniform
    /// random (≈ 1/clusters).
    #[must_use]
    pub fn intra_cluster_fraction(&self) -> f64 {
        1.0 / self.clusters as f64
    }
}

impl Network for HybridCryoBus {
    fn name(&self) -> String {
        if self.ways > 1 {
            format!("Hybrid CryoBus ({}-way)", self.ways)
        } else {
            "Hybrid CryoBus".to_string()
        }
    }

    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn resource_count(&self) -> usize {
        // Per-cluster bus ways + directed global mesh links (2x2 mesh:
        // 8 directed links, use 4*4 id space for simplicity).
        self.clusters * self.ways + 16
    }

    fn path(&self, src: usize, dst: usize, tag: u64) -> Vec<PacketLeg> {
        let sc = self.cluster_of(src);
        let dc = self.cluster_of(dst);
        let way = (tag as usize) % self.ways;
        let bus = |c: usize| c * self.ways + way;
        let occ = self.cluster.occupancy_cycles();
        let lat = self.cluster.transaction_latency();

        if sc == dc {
            return vec![
                PacketLeg::latency(lat - occ),
                PacketLeg::on(bus(sc), occ, occ),
            ];
        }
        // Source-cluster bus → global mesh (1 or 2 hops on the 2x2 mesh)
        // → destination-cluster bus.
        let global_base = self.clusters * self.ways;
        let (sx, sy) = (sc % 2, sc / 2);
        let (dx, dy) = (dc % 2, dc / 2);
        let mut legs = vec![
            PacketLeg::latency(lat - occ),
            PacketLeg::on(bus(sc), occ, occ),
        ];
        let mut cur = (sx, sy);
        if sx != dx {
            let next = (dx, sy);
            legs.push(PacketLeg::on(
                global_base + (cur.1 * 2 + cur.0) * 4 + (next.1 * 2 + next.0),
                1,
                1 + self.global_link_cycles,
            ));
            cur = next;
        }
        if sy != dy {
            let next = (dx, dy);
            legs.push(PacketLeg::on(
                global_base + (cur.1 * 2 + cur.0) * 4 + (next.1 * 2 + next.0),
                1,
                1 + self.global_link_cycles,
            ));
        }
        legs.push(PacketLeg::on(bus(dc), occ, occ));
        legs
    }

    fn route_classes(&self, _dead: &[usize]) -> usize {
        // The tag selects the interleave way regardless of the dead set:
        // the hybrid keeps the default `path_avoiding` (no remapping), so
        // a route class is exactly a way.
        self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t77() -> Temperature {
        Temperature::liquid_nitrogen()
    }

    #[test]
    fn c256_has_256_nodes() {
        let h = HybridCryoBus::c256(t77(), 1);
        assert_eq!(h.topology().nodes(), 256);
    }

    #[test]
    fn cluster_mapping_covers_four_clusters() {
        let h = HybridCryoBus::c256(t77(), 1);
        let mut seen = [false; 4];
        for core in 0..256 {
            seen[h.cluster_of(core)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!((h.intra_cluster_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn intra_cluster_latency_equals_cryobus() {
        let h = HybridCryoBus::c256(t77(), 1);
        let cryo = CryoBus::new(64, t77());
        // Cores 0 and 1 share the top-left cluster.
        assert_eq!(h.zero_load_latency(0, 1), cryo.transaction_latency());
    }

    #[test]
    fn inter_cluster_costs_more() {
        let h = HybridCryoBus::c256(t77(), 1);
        let intra = h.zero_load_latency(0, 1);
        // Core 0 (cluster 0) to core 255 (cluster 3): diagonal, 2 mesh hops.
        let inter = h.zero_load_latency(0, 255);
        assert!(inter > intra, "inter {inter} <= intra {intra}");
    }

    #[test]
    fn rejects_wrong_cluster_count() {
        assert!(HybridCryoBus::try_new(2, 64, t77(), 1).is_err());
    }

    #[test]
    fn interleaving_helps_hybrid_too() {
        let one = HybridCryoBus::c256(t77(), 1);
        let two = HybridCryoBus::c256(t77(), 2);
        assert!(two.resource_count() > one.resource_count());
    }
}
