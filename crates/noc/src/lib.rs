//! # cryowire-noc
//!
//! Cycle-level network-on-chip simulation for cryogenic computing
//! (Section 5 of the paper) — the BookSim substitute.
//!
//! The crate models every NoC the paper evaluates on the 64-core CPU
//! (Fig. 15): the router-based **Mesh**, **Concentrated Mesh** and
//! **Flattened Butterfly** (1-cycle and 3-cycle routers), the bidirectional
//! **Shared bus**, the **H-tree bus**, and the paper's proposed
//! **CryoBus** — an H-tree snooping bus with a central matrix arbiter and
//! dynamic link connection — plus k-way address interleaving and the
//! 256-core hybrid CryoBus of Section 7.3.
//!
//! Contention is simulated with a resource-reservation engine
//! ([`sim`]): each packet claims the links/bus segments along its path in
//! injection order, which reproduces zero-load latency exactly and
//! saturation behaviour faithfully enough for the paper's load–latency
//! comparisons.
//!
//! ```
//! use cryowire_device::Temperature;
//! use cryowire_noc::{CryoBus, SharedBus};
//!
//! let t77 = Temperature::liquid_nitrogen();
//! let cryobus = CryoBus::new(64, t77);
//! let shared = SharedBus::new(64, t77);
//! // CryoBus reaches the 1-cycle broadcast the shared bus cannot.
//! assert!(cryobus.occupancy_cycles() < shared.occupancy_cycles());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod cryobus;
pub mod deadlock;
pub mod error;
pub mod flit;
pub mod hybrid;
pub mod link;
pub mod load_latency;
pub mod route_cache;
pub mod router;
pub mod router_timing;
pub mod segmented_bus;
pub mod sim;
pub mod topology;
pub mod traffic;

pub use bus::{BusKind, SharedBus};
pub use cryobus::{CryoBus, MatrixArbiter};
pub use deadlock::{xy_route, yx_route, ChannelDependencyGraph, DetourPolicy, DetourRouter};
pub use error::{NocError, SimError};
pub use flit::{flit_load_latency, FlitConfig, FlitNetwork, FlitSimResult};
pub use hybrid::HybridCryoBus;
pub use link::LinkModel;
pub use load_latency::{
    LoadLatencyCurve, LoadLatencyPoint, LoadLatencySweep, WorkloadBand, WORKLOAD_BANDS,
};
pub use route_cache::PathTable;
pub use router::{RouterClass, RouterNetwork};
pub use router_timing::{RouterStage, RouterTimingModel};
pub use segmented_bus::SegmentedBus;
pub use sim::{BatchSimScratch, Network, PacketLeg, SimConfig, SimResult, SimScratch, Simulator};
pub use topology::{NocKind, Topology};
pub use traffic::TrafficPattern;
