//! Deadlock-freedom analysis via channel-dependency graphs
//! (Dally & Seitz).
//!
//! A routing function is deadlock-free on wormhole networks iff its
//! channel-dependency graph (CDG) is acyclic: nodes are directed channels,
//! and an edge `c1 → c2` exists when some route holds `c1` while waiting
//! for `c2`. The XY routing used by the paper's mesh networks (Table 4)
//! is provably acyclic; an unrestricted adaptive function is not. This
//! module builds the CDG from the actual route function and checks it —
//! a structural safety proof for the simulators in this crate.

use std::collections::HashSet;

use crate::topology::Topology;

/// A directed channel between adjacent routers.
pub type Channel = (usize, usize);

/// The channel-dependency graph of a routing function on a grid.
#[derive(Debug, Clone)]
pub struct ChannelDependencyGraph {
    /// Directed edges between channels.
    edges: HashSet<(Channel, Channel)>,
    channels: HashSet<Channel>,
}

impl ChannelDependencyGraph {
    /// Builds the CDG for a route function: `route(topology, src, dst)`
    /// must return the ordered router sequence.
    #[must_use]
    pub fn build<F>(topo: &Topology, route: F) -> Self
    where
        F: Fn(&Topology, usize, usize) -> Vec<usize>,
    {
        let mut edges = HashSet::new();
        let mut channels = HashSet::new();
        for src in 0..topo.nodes() {
            for dst in 0..topo.nodes() {
                if src == dst {
                    continue;
                }
                let path = route(topo, src, dst);
                let hops: Vec<Channel> = path.windows(2).map(|w| (w[0], w[1])).collect();
                for c in &hops {
                    channels.insert(*c);
                }
                for pair in hops.windows(2) {
                    edges.insert((pair[0], pair[1]));
                }
            }
        }
        ChannelDependencyGraph { edges, channels }
    }

    /// Number of channels that appear in some route.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// True if the dependency graph contains no cycle (⇒ deadlock-free).
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        // Iterative DFS with colors over the channel graph.
        let mut color: std::collections::HashMap<Channel, u8> = std::collections::HashMap::new();
        let adjacency: std::collections::HashMap<Channel, Vec<Channel>> = {
            let mut m: std::collections::HashMap<Channel, Vec<Channel>> =
                std::collections::HashMap::new();
            for &(a, b) in &self.edges {
                m.entry(a).or_default().push(b);
            }
            m
        };
        for &start in &self.channels {
            if color.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            // (channel, next child index) stack.
            let mut stack = vec![(start, 0usize)];
            color.insert(start, 1);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = adjacency.get(&node).map_or(&[][..], Vec::as_slice);
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match color.get(&child).copied().unwrap_or(0) {
                        0 => {
                            color.insert(child, 1);
                            stack.push((child, 0));
                        }
                        1 => return false, // back edge: cycle
                        _ => {}
                    }
                } else {
                    color.insert(node, 2);
                    stack.pop();
                }
            }
        }
        true
    }
}

/// XY (dimension-ordered) routing: the route used by the mesh simulators.
#[must_use]
pub fn xy_route(topo: &Topology, src: usize, dst: usize) -> Vec<usize> {
    let (sx, sy) = topo.coords(src);
    let (dx, dy) = topo.coords(dst);
    let mut path = vec![src];
    let (mut x, mut y) = (sx, sy);
    while x != dx {
        x = if dx > x { x + 1 } else { x - 1 };
        path.push(topo.node_at(x, y));
    }
    while y != dy {
        y = if dy > y { y + 1 } else { y - 1 };
        path.push(topo.node_at(x, y));
    }
    path
}

/// YX routing (the mirror of XY; also deadlock-free on its own).
#[must_use]
pub fn yx_route(topo: &Topology, src: usize, dst: usize) -> Vec<usize> {
    let (sx, sy) = topo.coords(src);
    let (dx, dy) = topo.coords(dst);
    let mut path = vec![src];
    let (mut x, mut y) = (sx, sy);
    while y != dy {
        y = if dy > y { y + 1 } else { y - 1 };
        path.push(topo.node_at(x, y));
    }
    while x != dx {
        x = if dx > x { x + 1 } else { x - 1 };
        path.push(topo.node_at(x, y));
    }
    path
}

/// Which routing function a [`DetourRouter`] settled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetourPolicy {
    /// XY routes, falling back to YX only for pairs whose XY route
    /// crosses a dead channel — kept only when the resulting mixed CDG
    /// is acyclic.
    XyWithYxDetours,
    /// Pure YX for everyone: the provably deadlock-free fallback used
    /// when the mixed function's CDG has a cycle.
    YxOnly,
}

/// Fault-aware routing that stays deadlock-free by construction.
///
/// Given a set of dead channels, the router first tries the permissive
/// policy (XY, detouring to YX only where XY is blocked) and validates
/// the *actual* resulting route function against the channel-dependency
/// check. Mixing XY and YX generally creates CDG cycles (see
/// [`mixed_route`]), so when validation fails the router degrades to
/// pure YX — a subset of the YX CDG, acyclic by construction. Pairs
/// whose route crosses a dead channel under the final policy get `None`
/// and must be reported as blocked rather than sent into the network.
#[derive(Debug, Clone)]
pub struct DetourRouter {
    topo: Topology,
    dead: HashSet<Channel>,
    policy: DetourPolicy,
}

impl DetourRouter {
    /// Builds a detour router around `dead_channels`, choosing the most
    /// permissive policy whose CDG is acyclic.
    #[must_use]
    pub fn new(topo: &Topology, dead_channels: &[Channel]) -> Self {
        let dead: HashSet<Channel> = dead_channels.iter().copied().collect();
        let candidate = DetourRouter {
            topo: *topo,
            dead: dead.clone(),
            policy: DetourPolicy::XyWithYxDetours,
        };
        let cdg = ChannelDependencyGraph::build(topo, |_, s, d| {
            candidate.route(s, d).unwrap_or_default()
        });
        if cdg.is_acyclic() {
            candidate
        } else {
            DetourRouter {
                topo: *topo,
                dead,
                policy: DetourPolicy::YxOnly,
            }
        }
    }

    /// The policy the CDG validation settled on.
    #[must_use]
    pub fn policy(&self) -> DetourPolicy {
        self.policy
    }

    fn avoids_dead(&self, path: &[usize]) -> bool {
        path.windows(2).all(|w| !self.dead.contains(&(w[0], w[1])))
    }

    /// The route from `src` to `dst` under the final policy, or `None`
    /// if every allowed route crosses a dead channel.
    #[must_use]
    pub fn route(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        if src == dst {
            return Some(vec![src]);
        }
        if self.policy == DetourPolicy::XyWithYxDetours {
            let xy = xy_route(&self.topo, src, dst);
            if self.avoids_dead(&xy) {
                return Some(xy);
            }
        }
        let yx = yx_route(&self.topo, src, dst);
        self.avoids_dead(&yx).then_some(yx)
    }

    /// Re-validates the final route function (cheap structural check
    /// used by tests and debug assertions).
    #[must_use]
    pub fn is_deadlock_free(&self) -> bool {
        ChannelDependencyGraph::build(&self.topo, |_, s, d| self.route(s, d).unwrap_or_default())
            .is_acyclic()
    }
}

/// A deliberately unrestricted "adaptive" function that alternates XY and
/// YX by source parity — the classic way to create a cyclic CDG.
#[must_use]
pub fn mixed_route(topo: &Topology, src: usize, dst: usize) -> Vec<usize> {
    if src.is_multiple_of(2) {
        xy_route(topo, src, dst)
    } else {
        yx_route(topo, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_routing_is_deadlock_free() {
        // The safety property the paper's mesh setup (Table 4,
        // "XY-routing") relies on.
        let topo = Topology::c64();
        let cdg = ChannelDependencyGraph::build(&topo, xy_route);
        assert!(cdg.is_acyclic(), "XY routing must have an acyclic CDG");
        // 8x8 mesh: 2·2·(8·7) = 224 directed channels.
        assert_eq!(cdg.channel_count(), 224);
    }

    #[test]
    fn yx_routing_is_deadlock_free() {
        let topo = Topology::c64();
        let cdg = ChannelDependencyGraph::build(&topo, yx_route);
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn mixing_dimensions_creates_cycles() {
        // Negative control: the checker actually detects deadlock-capable
        // routing.
        let topo = Topology::c64();
        let cdg = ChannelDependencyGraph::build(&topo, mixed_route);
        assert!(!cdg.is_acyclic(), "mixed XY/YX must create a CDG cycle");
    }

    #[test]
    fn works_on_small_grids_too() {
        let topo = Topology::square(16).unwrap();
        assert!(ChannelDependencyGraph::build(&topo, xy_route).is_acyclic());
        assert!(!ChannelDependencyGraph::build(&topo, mixed_route).is_acyclic());
    }

    #[test]
    fn detour_router_with_no_faults_is_plain_xy() {
        let topo = Topology::c64();
        let dr = DetourRouter::new(&topo, &[]);
        assert_eq!(dr.policy(), DetourPolicy::XyWithYxDetours);
        for (src, dst) in [(0, 63), (7, 56), (12, 34)] {
            assert_eq!(dr.route(src, dst), Some(xy_route(&topo, src, dst)));
        }
        assert!(dr.is_deadlock_free());
    }

    #[test]
    fn detour_router_avoids_dead_channel_and_stays_acyclic() {
        let topo = Topology::c64();
        // Kill the channel 0→1 (first hop of many XY routes out of
        // node 0). A pair differing in both dimensions can detour via
        // YX; a same-row pair could not (XY and YX coincide there).
        let dr = DetourRouter::new(&topo, &[(0, 1)]);
        let route = dr.route(0, 9).expect("a detour must exist");
        assert!(
            route.windows(2).all(|w| (w[0], w[1]) != (0, 1)),
            "route {route:?} crosses the dead channel"
        );
        assert!(dr.is_deadlock_free());
    }

    #[test]
    fn detour_router_reports_unroutable_pairs() {
        let topo = Topology::square(4).unwrap();
        // Isolate node 0 by killing every channel in and out of it.
        let n = topo.nodes();
        let mut dead = Vec::new();
        for other in 0..n {
            if topo.manhattan_hops(0, other) == 1 {
                dead.push((0, other));
                dead.push((other, 0));
            }
        }
        let dr = DetourRouter::new(&topo, &dead);
        assert_eq!(dr.route(0, 3), None, "fully isolated node has no route");
        assert!(dr.is_deadlock_free());
    }

    #[test]
    fn detour_router_same_node_routes_to_itself() {
        let topo = Topology::square(16).unwrap();
        let dr = DetourRouter::new(&topo, &[(0, 1)]);
        assert_eq!(dr.route(5, 5), Some(vec![5]));
    }

    #[test]
    fn routes_are_minimal() {
        let topo = Topology::c64();
        for src in 0..64 {
            for dst in 0..64 {
                if src == dst {
                    continue;
                }
                let path = xy_route(&topo, src, dst);
                assert_eq!(path.len() - 1, topo.manhattan_hops(src, dst));
            }
        }
    }
}
