//! Deadlock-freedom analysis via channel-dependency graphs
//! (Dally & Seitz).
//!
//! A routing function is deadlock-free on wormhole networks iff its
//! channel-dependency graph (CDG) is acyclic: nodes are directed channels,
//! and an edge `c1 → c2` exists when some route holds `c1` while waiting
//! for `c2`. The XY routing used by the paper's mesh networks (Table 4)
//! is provably acyclic; an unrestricted adaptive function is not. This
//! module builds the CDG from the actual route function and checks it —
//! a structural safety proof for the simulators in this crate.

use std::collections::HashSet;

use crate::topology::Topology;

/// A directed channel between adjacent routers.
pub type Channel = (usize, usize);

/// The channel-dependency graph of a routing function on a grid.
#[derive(Debug, Clone)]
pub struct ChannelDependencyGraph {
    /// Directed edges between channels.
    edges: HashSet<(Channel, Channel)>,
    channels: HashSet<Channel>,
}

impl ChannelDependencyGraph {
    /// Builds the CDG for a route function: `route(topology, src, dst)`
    /// must return the ordered router sequence.
    #[must_use]
    pub fn build<F>(topo: &Topology, route: F) -> Self
    where
        F: Fn(&Topology, usize, usize) -> Vec<usize>,
    {
        let mut edges = HashSet::new();
        let mut channels = HashSet::new();
        for src in 0..topo.nodes() {
            for dst in 0..topo.nodes() {
                if src == dst {
                    continue;
                }
                let path = route(topo, src, dst);
                let hops: Vec<Channel> = path.windows(2).map(|w| (w[0], w[1])).collect();
                for c in &hops {
                    channels.insert(*c);
                }
                for pair in hops.windows(2) {
                    edges.insert((pair[0], pair[1]));
                }
            }
        }
        ChannelDependencyGraph { edges, channels }
    }

    /// Number of channels that appear in some route.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// True if the dependency graph contains no cycle (⇒ deadlock-free).
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        // Iterative DFS with colors over the channel graph.
        let mut color: std::collections::HashMap<Channel, u8> = std::collections::HashMap::new();
        let adjacency: std::collections::HashMap<Channel, Vec<Channel>> = {
            let mut m: std::collections::HashMap<Channel, Vec<Channel>> =
                std::collections::HashMap::new();
            for &(a, b) in &self.edges {
                m.entry(a).or_default().push(b);
            }
            m
        };
        for &start in &self.channels {
            if color.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            // (channel, next child index) stack.
            let mut stack = vec![(start, 0usize)];
            color.insert(start, 1);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = adjacency.get(&node).map_or(&[][..], Vec::as_slice);
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match color.get(&child).copied().unwrap_or(0) {
                        0 => {
                            color.insert(child, 1);
                            stack.push((child, 0));
                        }
                        1 => return false, // back edge: cycle
                        _ => {}
                    }
                } else {
                    color.insert(node, 2);
                    stack.pop();
                }
            }
        }
        true
    }
}

/// XY (dimension-ordered) routing: the route used by the mesh simulators.
#[must_use]
pub fn xy_route(topo: &Topology, src: usize, dst: usize) -> Vec<usize> {
    let (sx, sy) = topo.coords(src);
    let (dx, dy) = topo.coords(dst);
    let mut path = vec![src];
    let (mut x, mut y) = (sx, sy);
    while x != dx {
        x = if dx > x { x + 1 } else { x - 1 };
        path.push(topo.node_at(x, y));
    }
    while y != dy {
        y = if dy > y { y + 1 } else { y - 1 };
        path.push(topo.node_at(x, y));
    }
    path
}

/// YX routing (the mirror of XY; also deadlock-free on its own).
#[must_use]
pub fn yx_route(topo: &Topology, src: usize, dst: usize) -> Vec<usize> {
    let (sx, sy) = topo.coords(src);
    let (dx, dy) = topo.coords(dst);
    let mut path = vec![src];
    let (mut x, mut y) = (sx, sy);
    while y != dy {
        y = if dy > y { y + 1 } else { y - 1 };
        path.push(topo.node_at(x, y));
    }
    while x != dx {
        x = if dx > x { x + 1 } else { x - 1 };
        path.push(topo.node_at(x, y));
    }
    path
}

/// A deliberately unrestricted "adaptive" function that alternates XY and
/// YX by source parity — the classic way to create a cyclic CDG.
#[must_use]
pub fn mixed_route(topo: &Topology, src: usize, dst: usize) -> Vec<usize> {
    if src.is_multiple_of(2) {
        xy_route(topo, src, dst)
    } else {
        yx_route(topo, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_routing_is_deadlock_free() {
        // The safety property the paper's mesh setup (Table 4,
        // "XY-routing") relies on.
        let topo = Topology::c64();
        let cdg = ChannelDependencyGraph::build(&topo, xy_route);
        assert!(cdg.is_acyclic(), "XY routing must have an acyclic CDG");
        // 8x8 mesh: 2·2·(8·7) = 224 directed channels.
        assert_eq!(cdg.channel_count(), 224);
    }

    #[test]
    fn yx_routing_is_deadlock_free() {
        let topo = Topology::c64();
        let cdg = ChannelDependencyGraph::build(&topo, yx_route);
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn mixing_dimensions_creates_cycles() {
        // Negative control: the checker actually detects deadlock-capable
        // routing.
        let topo = Topology::c64();
        let cdg = ChannelDependencyGraph::build(&topo, mixed_route);
        assert!(!cdg.is_acyclic(), "mixed XY/YX must create a CDG cycle");
    }

    #[test]
    fn works_on_small_grids_too() {
        let topo = Topology::square(16).unwrap();
        assert!(ChannelDependencyGraph::build(&topo, xy_route).is_acyclic());
        assert!(!ChannelDependencyGraph::build(&topo, mixed_route).is_acyclic());
    }

    #[test]
    fn routes_are_minimal() {
        let topo = Topology::c64();
        for src in 0..64 {
            for dst in 0..64 {
                if src == dst {
                    continue;
                }
                let path = xy_route(&topo, src, dst);
                assert_eq!(path.len() - 1, topo.manhattan_hops(src, dst));
            }
        }
    }
}
