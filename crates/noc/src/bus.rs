//! Shared-bus models: the conventional bidirectional snooping bus and the
//! H-tree-shaped bus (Section 5.1 / 5.2).
//!
//! A bus transaction goes through the Fig. 19 phases: the requesting core
//! signals the central arbiter (dedicated control wires — pure latency),
//! the arbiter arbitrates (1 cycle), the grant travels back (plus one
//! control cycle when the dynamic link connection must be programmed),
//! and the granted core broadcasts on the shared data wires — the only
//! contended resource, held for the broadcast duration, which therefore
//! sets the bandwidth limit (Section 5.2.3).

use cryowire_device::Temperature;

use crate::error::NocError;
use crate::link::LinkModel;
use crate::sim::{Network, PacketLeg};
use crate::topology::Topology;

/// Bus wiring shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// Conventional bidirectional spine bus (Fig. 15d): 30-hop maximum
    /// span on the 64-core die.
    Conventional,
    /// H-tree-shaped bus (Fig. 19): 12-hop maximum span, requires the
    /// dynamic link connection (one extra control cycle on grant).
    HTree,
}

/// A shared snooping bus at a given temperature.
///
/// The per-phase cycle counts are derived from the wire-link model: the
/// 300 K conventional bus needs 8 cycles to broadcast over 30 hops at
/// 4 hops/cycle, while CryoBus (the 77 K H-tree) broadcasts over 12 hops
/// in a single cycle at 12 hops/cycle.
#[derive(Debug, Clone)]
pub struct SharedBus {
    kind: BusKind,
    topo: Topology,
    temperature: Temperature,
    request_cycles: u64,
    arbitration_cycles: u64,
    grant_cycles: u64,
    broadcast_cycles: u64,
    /// Address-interleaving ways (Section 7.1): number of independent
    /// buses, each serving an address slice.
    ways: usize,
    /// Bus clock, GHz.
    clock_ghz: f64,
}

impl SharedBus {
    /// A conventional bidirectional bus over `nodes` cores at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not a perfect square; use
    /// [`SharedBus::with_kind`] for fallible construction.
    #[must_use]
    pub fn new(nodes: usize, t: Temperature) -> Self {
        SharedBus::with_kind(BusKind::Conventional, nodes, t, 1).expect("valid conventional bus")
    }

    /// Builds a bus of `kind` with `ways`-way address interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] for invalid node counts or zero ways.
    pub fn with_kind(
        kind: BusKind,
        nodes: usize,
        t: Temperature,
        ways: usize,
    ) -> Result<Self, NocError> {
        // Table 4: buses run in the 4 GHz clock domain.
        SharedBus::with_kind_at_clock(kind, nodes, t, ways, 4.0)
    }

    /// Builds a bus with an explicit clock (the Fig. 27 temperature sweep
    /// slows the bus clock with temperature to keep the single-cycle
    /// broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] for invalid node counts or zero ways.
    pub fn with_kind_at_clock(
        kind: BusKind,
        nodes: usize,
        t: Temperature,
        ways: usize,
        clock_ghz: f64,
    ) -> Result<Self, NocError> {
        SharedBus::with_kind_at_clock_detoured(kind, nodes, t, ways, clock_ghz, 0)
    }

    /// Builds a bus whose broadcast span is lengthened by
    /// `extra_span_hops` wire hops — how CryoBus models the dynamic link
    /// connection re-forming around dead H-tree segments: the broadcast
    /// detours through neighbouring branches, paying wire length instead
    /// of failing.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] for invalid node counts or zero ways.
    pub fn with_kind_at_clock_detoured(
        kind: BusKind,
        nodes: usize,
        t: Temperature,
        ways: usize,
        clock_ghz: f64,
        extra_span_hops: usize,
    ) -> Result<Self, NocError> {
        if ways == 0 {
            return Err(NocError::InvalidNodeCount {
                nodes: ways,
                requirement: "interleaving needs at least one way",
            });
        }
        let topo = Topology::square(nodes)?;
        let link = LinkModel::new();
        let clock = clock_ghz;
        let (to_center, base_span, control) = match kind {
            BusKind::Conventional => (
                topo.shared_bus_max_hops() / 2,
                topo.shared_bus_max_hops(),
                0,
            ),
            BusKind::HTree => (topo.htree_to_center_hops(), topo.htree_max_hops(), 1),
        };
        let span = base_span + extra_span_hops;
        Ok(SharedBus {
            kind,
            topo,
            temperature: t,
            request_cycles: link.traversal_cycles(to_center, t, clock) as u64,
            arbitration_cycles: 1,
            grant_cycles: link.traversal_cycles(to_center, t, clock) as u64 + control,
            broadcast_cycles: link.traversal_cycles(span, t, clock) as u64,
            ways,
            clock_ghz: clock,
        })
    }

    /// The bus wiring shape.
    #[must_use]
    pub fn kind(&self) -> BusKind {
        self.kind
    }

    /// Operating temperature.
    #[must_use]
    pub fn temperature(&self) -> Temperature {
        self.temperature
    }

    /// Interleaving ways.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Bus clock, GHz.
    #[must_use]
    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    /// Cycles the shared data wires are held per transaction — the
    /// quantity the Fig. 20 red target line constrains.
    #[must_use]
    pub fn occupancy_cycles(&self) -> u64 {
        self.broadcast_cycles
    }

    /// Zero-load transaction latency decomposition
    /// `(request, arbitration, grant, broadcast)` in cycles (Fig. 20).
    #[must_use]
    pub fn latency_breakdown(&self) -> (u64, u64, u64, u64) {
        (
            self.request_cycles,
            self.arbitration_cycles,
            self.grant_cycles,
            self.broadcast_cycles,
        )
    }

    /// Total zero-load transaction latency, cycles.
    #[must_use]
    pub fn transaction_latency(&self) -> u64 {
        self.request_cycles + self.arbitration_cycles + self.grant_cycles + self.broadcast_cycles
    }

    /// Theoretical saturation injection rate per core (packets/core/cycle):
    /// each of the `ways` buses serves one broadcast per
    /// [`SharedBus::occupancy_cycles`].
    #[must_use]
    pub fn saturation_rate_per_core(&self) -> f64 {
        self.ways as f64 / (self.occupancy_cycles() as f64 * self.topo.nodes() as f64)
    }
}

impl Network for SharedBus {
    fn name(&self) -> String {
        let kind = match self.kind {
            BusKind::Conventional => "Shared bus",
            BusKind::HTree => "H-tree bus",
        };
        if self.ways > 1 {
            format!("{kind} ({}-way) @ {}", self.ways, self.temperature)
        } else {
            format!("{kind} @ {}", self.temperature)
        }
    }

    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn resource_count(&self) -> usize {
        self.ways
    }

    fn path(&self, _src: usize, _dst: usize, tag: u64) -> Vec<PacketLeg> {
        let way = (tag as usize) % self.ways;
        vec![
            PacketLeg::latency(self.request_cycles + self.arbitration_cycles + self.grant_cycles),
            PacketLeg::on(way, self.broadcast_cycles, self.broadcast_cycles),
        ]
    }

    fn path_avoiding(
        &self,
        _src: usize,
        _dst: usize,
        tag: u64,
        dead: &[usize],
    ) -> Option<Vec<PacketLeg>> {
        // Interleaving degrades gracefully: addresses re-interleave over
        // the surviving ways; the bus only blocks when every way is dead.
        let alive: Vec<usize> = (0..self.ways).filter(|w| !dead.contains(w)).collect();
        if alive.is_empty() {
            return None;
        }
        let way = alive[(tag as usize) % alive.len()];
        Some(vec![
            PacketLeg::latency(self.request_cycles + self.arbitration_cycles + self.grant_cycles),
            PacketLeg::on(way, self.broadcast_cycles, self.broadcast_cycles),
        ])
    }

    fn route_classes(&self, dead: &[usize]) -> usize {
        // The tag picks an interleave way: one route class per healthy
        // way (class c maps to the c-th surviving way, matching the
        // modular arithmetic of `path`/`path_avoiding` above).
        if dead.is_empty() {
            self.ways
        } else {
            (0..self.ways).filter(|w| !dead.contains(w)).count().max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t300() -> Temperature {
        Temperature::ambient()
    }
    fn t77() -> Temperature {
        Temperature::liquid_nitrogen()
    }

    #[test]
    fn conventional_300k_breakdown() {
        // 30-hop span at 4 hops/cycle: 8-cycle broadcast; 15-hop request
        // and grant at 4 cycles each.
        let bus = SharedBus::new(64, t300());
        let (req, arb, grant, bcast) = bus.latency_breakdown();
        assert_eq!(req, 4);
        assert_eq!(arb, 1);
        assert_eq!(grant, 4);
        assert_eq!(bcast, 8);
        assert_eq!(bus.transaction_latency(), 17);
    }

    #[test]
    fn conventional_77k_is_much_faster() {
        // Guideline #1: the bus latency is entirely wire, so it collapses
        // at 77 K.
        let b300 = SharedBus::new(64, t300());
        let b77 = SharedBus::new(64, t77());
        assert!(b77.transaction_latency() * 2 <= b300.transaction_latency());
        assert_eq!(b77.occupancy_cycles(), 3); // 30 hops at 12 hops/cycle
    }

    #[test]
    fn htree_300k_cannot_reach_single_cycle() {
        // Fig. 20: topology optimization alone is not enough.
        let h300 = SharedBus::with_kind(BusKind::HTree, 64, t300(), 1).unwrap();
        assert!(h300.occupancy_cycles() > 1);
    }

    #[test]
    fn htree_77k_reaches_single_cycle_broadcast() {
        // Fig. 20: CryoBus = H-tree + 77 K wires ⇒ 1-cycle broadcast.
        let h77 = SharedBus::with_kind(BusKind::HTree, 64, t77(), 1).unwrap();
        assert_eq!(h77.occupancy_cycles(), 1);
    }

    #[test]
    fn saturation_rates_order_as_fig18_and_20() {
        let b300 = SharedBus::new(64, t300());
        let b77 = SharedBus::new(64, t77());
        let cryo = SharedBus::with_kind(BusKind::HTree, 64, t77(), 1).unwrap();
        let cryo2 = SharedBus::with_kind(BusKind::HTree, 64, t77(), 2).unwrap();
        assert!(b300.saturation_rate_per_core() < b77.saturation_rate_per_core());
        assert!(b77.saturation_rate_per_core() < cryo.saturation_rate_per_core());
        assert!(cryo.saturation_rate_per_core() < cryo2.saturation_rate_per_core());
        // CryoBus: 1 cycle × 64 cores ⇒ 1/64 per core.
        assert!((cryo.saturation_rate_per_core() - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn interleaving_splits_traffic_across_ways() {
        let bus = SharedBus::with_kind(BusKind::HTree, 64, t77(), 2).unwrap();
        let a = bus.path(0, 1, 0);
        let b = bus.path(0, 1, 1);
        assert_ne!(a[1].resource, b[1].resource);
        assert_eq!(bus.resource_count(), 2);
    }

    #[test]
    fn dead_way_remaps_to_survivors() {
        let bus = SharedBus::with_kind(BusKind::HTree, 64, t77(), 2).unwrap();
        // Way 0 dead: every tag lands on way 1.
        for tag in 0..8 {
            let legs = bus.path_avoiding(0, 1, tag, &[0]).unwrap();
            assert_eq!(legs[1].resource, Some(1));
        }
        // Both ways dead: blocked.
        assert!(bus.path_avoiding(0, 1, 0, &[0, 1]).is_none());
    }

    #[test]
    fn detoured_span_lengthens_broadcast() {
        let nominal = SharedBus::with_kind(BusKind::HTree, 64, t77(), 1).unwrap();
        let detoured =
            SharedBus::with_kind_at_clock_detoured(BusKind::HTree, 64, t77(), 1, 4.0, 12).unwrap();
        assert!(detoured.occupancy_cycles() > nominal.occupancy_cycles());
        assert!(detoured.transaction_latency() > nominal.transaction_latency());
    }

    #[test]
    fn zero_ways_rejected() {
        assert!(SharedBus::with_kind(BusKind::Conventional, 64, t300(), 0).is_err());
    }

    #[test]
    fn zero_load_latency_equals_transaction_latency() {
        let bus = SharedBus::new(64, t300());
        assert_eq!(bus.zero_load_latency(0, 63), bus.transaction_latency());
    }
}
