//! Load–latency sweep harness (Fig. 18 / 21 / 25 / 26) and the workload
//! injection-rate bands of Fig. 18.

use cryowire_faults::FaultSchedule;

use crate::error::{NocError, SimError};
use crate::sim::{Network, SimConfig, SimScratch, Simulator};
use crate::traffic::TrafficPattern;

/// Per-core request injection-rate band of a workload suite
/// (L2 MPKI-derived, Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadBand {
    /// Suite name.
    pub name: &'static str,
    /// Minimum per-core injection rate (packets/core/cycle).
    pub min_rate: f64,
    /// Maximum per-core injection rate.
    pub max_rate: f64,
}

/// The measured injection bands of Fig. 18 (Gem5 + real-machine profiling
/// in the paper; encoded here as the band edges the figure shows).
pub const WORKLOAD_BANDS: [WorkloadBand; 4] = [
    WorkloadBand {
        name: "PARSEC",
        min_rate: 0.0005,
        max_rate: 0.004,
    },
    WorkloadBand {
        name: "SPEC2006",
        min_rate: 0.004,
        max_rate: 0.012,
    },
    WorkloadBand {
        name: "SPEC2017",
        min_rate: 0.005,
        max_rate: 0.013,
    },
    WorkloadBand {
        name: "CloudSuite",
        min_rate: 0.008,
        max_rate: 0.014,
    },
];

/// One point of a load–latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadLatencyPoint {
    /// Offered per-core injection rate.
    pub rate: f64,
    /// Measured average latency, cycles.
    pub latency: f64,
    /// Whether the network saturated.
    pub saturated: bool,
}

/// A full load–latency curve for one network/pattern combination.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadLatencyCurve {
    /// Network display name.
    pub network: String,
    /// Measured points, ascending in rate.
    pub points: Vec<LoadLatencyPoint>,
}

impl LoadLatencyCurve {
    /// Zero-load latency (first point's latency).
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    #[must_use]
    pub fn zero_load_latency(&self) -> f64 {
        self.points.first().expect("curve has points").latency
    }

    /// The lowest offered rate at which the network saturated, if any —
    /// the curve's bandwidth limit.
    #[must_use]
    pub fn saturation_rate(&self) -> Option<f64> {
        self.points.iter().find(|p| p.saturated).map(|p| p.rate)
    }

    /// True if the network sustains `rate` without saturating (i.e. the
    /// workload band fits under the curve).
    #[must_use]
    pub fn supports_rate(&self, rate: f64) -> bool {
        match self.saturation_rate() {
            Some(sat) => rate < sat,
            None => self
                .points
                .last()
                .is_some_and(|p| p.rate >= rate && !p.saturated),
        }
    }
}

/// Sweep configuration and runner.
#[derive(Debug, Clone)]
pub struct LoadLatencySweep {
    sim: Simulator,
    rates: Vec<f64>,
}

impl LoadLatencySweep {
    /// A sweep over the given rates with default simulation parameters.
    #[must_use]
    pub fn new(rates: Vec<f64>) -> Self {
        LoadLatencySweep {
            sim: Simulator::new(SimConfig::default()),
            rates,
        }
    }

    /// The default sweep covering all Fig. 18 workload bands
    /// (0.0002 .. 0.03, log-spaced-ish).
    #[must_use]
    pub fn fig18_default() -> Self {
        LoadLatencySweep::new(vec![
            0.0002, 0.0005, 0.001, 0.002, 0.003, 0.004, 0.006, 0.008, 0.010, 0.012, 0.014, 0.016,
            0.020, 0.025, 0.030,
        ])
    }

    /// Overrides the simulator configuration.
    #[must_use]
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.sim = Simulator::new(config);
        self
    }

    /// Runs the sweep over many networks concurrently, one worker thread
    /// per network (the Fig. 21/25 fan-out), via the
    /// [`cryowire_harness::Executor`] point executor.
    ///
    /// # Errors
    ///
    /// Propagates the first simulation error encountered.
    pub fn run_many(
        &self,
        networks: &[&(dyn Network + Sync)],
        pattern: TrafficPattern,
    ) -> Result<Vec<LoadLatencyCurve>, NocError> {
        cryowire_harness::Executor::new(networks.len())
            .run(networks, |_, net| self.run(*net, pattern))
            .into_iter()
            .collect()
    }

    /// Runs the sweep; the curve stops two points after first saturation
    /// (enough to show the hockey stick without wasting cycles).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (invalid rates or patterns).
    pub fn run(
        &self,
        network: &dyn Network,
        pattern: TrafficPattern,
    ) -> Result<LoadLatencyCurve, NocError> {
        match self.run_with_faults(network, pattern, &FaultSchedule::default()) {
            Ok(curve) => Ok(curve),
            Err(SimError::Noc(e)) => Err(e),
            Err(SimError::Stalled { .. }) => {
                unreachable!("the watchdog cannot fire without injected faults")
            }
        }
    }

    /// Runs the sweep with `faults` injected into every point. The
    /// same early-stop applies; the engine's progress watchdog turns a
    /// would-be hang (dead resources nobody can route around) into
    /// [`SimError::Stalled`] instead of looping forever.
    ///
    /// All rate points share one [`SimScratch`], so the memoized route
    /// tables are built once per curve and the per-point hot loop is
    /// allocation-free.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors, including the watchdog's
    /// [`SimError::Stalled`].
    pub fn run_with_faults(
        &self,
        network: &dyn Network,
        pattern: TrafficPattern,
        faults: &FaultSchedule,
    ) -> Result<LoadLatencyCurve, SimError> {
        let mut scratch = SimScratch::new();
        let mut points = Vec::new();
        let mut saturated_seen = 0;
        for &rate in &self.rates {
            let r = self
                .sim
                .run_with_scratch(network, pattern, rate, faults, &mut scratch)?;
            points.push(LoadLatencyPoint {
                rate,
                latency: r.avg_latency,
                saturated: r.saturated,
            });
            if r.saturated {
                saturated_seen += 1;
                if saturated_seen >= 2 {
                    break;
                }
            }
        }
        Ok(LoadLatencyCurve {
            network: network.name(),
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::SharedBus;
    use crate::cryobus::CryoBus;
    use cryowire_device::Temperature;

    fn quick_sweep(rates: Vec<f64>) -> LoadLatencySweep {
        LoadLatencySweep::new(rates).with_config(SimConfig {
            cycles: 8_000,
            warmup: 2_000,
            ..SimConfig::default()
        })
    }

    #[test]
    fn fig18_shared_bus_300k_fails_parsec() {
        // "300K Shared bus cannot run even the PARSEC workloads."
        let bus = SharedBus::new(64, Temperature::ambient());
        let curve = quick_sweep(vec![0.0005, 0.001, 0.002, 0.004])
            .run(&bus, TrafficPattern::UniformRandom)
            .unwrap();
        let parsec_max = WORKLOAD_BANDS[0].max_rate;
        assert!(
            !curve.supports_rate(parsec_max),
            "300 K bus should not sustain PARSEC max"
        );
    }

    #[test]
    fn fig18_shared_bus_77k_covers_parsec_not_spec() {
        let bus = SharedBus::new(64, Temperature::liquid_nitrogen());
        let curve = quick_sweep(vec![0.0005, 0.002, 0.004, 0.006, 0.010, 0.014])
            .run(&bus, TrafficPattern::UniformRandom)
            .unwrap();
        assert!(curve.supports_rate(WORKLOAD_BANDS[0].max_rate), "PARSEC");
        assert!(
            !curve.supports_rate(WORKLOAD_BANDS[2].max_rate),
            "SPEC2017 should exceed the 77 K shared bus"
        );
    }

    #[test]
    fn fig21_cryobus_covers_all_bands() {
        let bus = CryoBus::new(64, Temperature::liquid_nitrogen());
        let curve = quick_sweep(vec![0.001, 0.004, 0.008, 0.012, 0.0145])
            .run(&bus, TrafficPattern::UniformRandom)
            .unwrap();
        for band in WORKLOAD_BANDS {
            assert!(
                curve.supports_rate(band.max_rate),
                "CryoBus should sustain {}",
                band.name
            );
        }
    }

    #[test]
    fn curve_accessors() {
        let bus = CryoBus::new(64, Temperature::liquid_nitrogen());
        let curve = quick_sweep(vec![0.001, 0.02, 0.03])
            .run(&bus, TrafficPattern::UniformRandom)
            .unwrap();
        assert!(curve.zero_load_latency() >= 5.0);
        assert!(curve.saturation_rate().is_some());
    }

    #[test]
    fn bands_are_ordered_and_positive() {
        for band in WORKLOAD_BANDS {
            assert!(band.min_rate > 0.0 && band.min_rate < band.max_rate);
        }
    }
}
