//! Memoized routing: the flat route arena behind the simulator hot loop.
//!
//! Deterministic networks route a packet as a pure function of
//! `(src, dst, route_class, dead-set)`, where the route class is
//! `tag % Network::route_classes(dead)` (the tag only ever selects an
//! interleave way). [`PathTable`] exploits that: it asks the network for
//! every `(src, dst, class)` route **once** and stores the legs in one
//! flat arena (a contiguous `Vec<PacketLeg>` plus an offset table), so
//! the per-packet cost in the simulator drops from a heap-allocating
//! [`Network::path`] call to an index computation and a slice borrow.
//!
//! Identical leg sequences are hash-consed into one arena window during
//! the build: on bus-style networks every `(src, dst)` pair shares the
//! same handful of per-way routes, so the arena collapses to a few legs
//! and the hot loop stays cache-resident instead of striding through
//! `nodes² · classes` duplicated paths. Each offset-table entry also
//! carries its precomputed zero-load latency, so a lookup touches one
//! 16-byte entry plus the (shared) legs.
//!
//! Rebuilding on a fault epoch (a new dead-resource set) reuses the
//! arena's allocations; steady-state lookups never allocate.

use std::collections::HashMap;

use crate::sim::{Network, PacketLeg};

/// Offset-table entry: a half-open window into the leg arena plus the
/// window's precomputed zero-load latency (sum of traversal cycles).
///
/// `len == Entry::UNROUTABLE` marks an entry for which the network knows
/// no route around the dead set ([`Network::path_avoiding`] returned
/// `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    start: u32,
    len: u32,
    zero: u64,
}

impl Entry {
    const UNROUTABLE: u32 = u32::MAX;
}

/// A memoized route table for one `(network, dead-set)` pair.
///
/// Built eagerly over all `(src, dst, route_class)` triples; lookups are
/// allocation-free. The table relies on the [`Network::route_classes`]
/// contract — routing depends on `tag` only through
/// `tag % route_classes(dead)`, with class `c` reproduced by the
/// representative tag `c` — which the property tests in this crate
/// verify for every concrete network.
#[derive(Debug, Clone, Default)]
pub struct PathTable {
    nodes: usize,
    classes: usize,
    entries: Vec<Entry>,
    legs: Vec<PacketLeg>,
}

impl PathTable {
    /// An empty table; [`PathTable::rebuild`] populates it.
    #[must_use]
    pub fn new() -> Self {
        PathTable::default()
    }

    /// Number of route classes the table was built with.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// (Re)builds the table for `network` under the `dead` resource set,
    /// reusing the arena's existing allocations.
    pub fn rebuild(&mut self, network: &dyn Network, dead: &[usize]) {
        let n = network.topology().nodes();
        self.nodes = n;
        self.classes = network.route_classes(dead).max(1);
        self.entries.clear();
        self.legs.clear();
        self.entries.reserve(n * n * self.classes);
        // Hash-consing map: identical leg sequences share one window.
        // Only lives for the duration of the (cold) build.
        let mut interned: HashMap<Vec<PacketLeg>, (u32, u32)> = HashMap::new();
        for src in 0..n {
            for dst in 0..n {
                for class in 0..self.classes {
                    if src == dst {
                        // Traffic patterns never emit self-sends; keep the
                        // diagonal as an empty (routable) window so the
                        // indexing stays dense.
                        self.entries.push(Entry {
                            start: 0,
                            len: 0,
                            zero: 0,
                        });
                        continue;
                    }
                    let tag = class as u64;
                    let route = if dead.is_empty() {
                        Some(network.path(src, dst, tag))
                    } else {
                        network.path_avoiding(src, dst, tag, dead)
                    };
                    match route {
                        Some(route) => {
                            let zero = route.iter().map(|l| l.traversal_cycles).sum();
                            let legs = &mut self.legs;
                            let (start, len) = *interned.entry(route).or_insert_with_key(|route| {
                                let start = u32::try_from(legs.len())
                                    .expect("route arena exceeds u32 offsets");
                                let len =
                                    u32::try_from(route.len()).expect("route exceeds u32 legs");
                                assert!(
                                    len != Entry::UNROUTABLE,
                                    "route length sentinel collision"
                                );
                                legs.extend_from_slice(route);
                                (start, len)
                            });
                            self.entries.push(Entry { start, len, zero });
                        }
                        None => {
                            self.entries.push(Entry {
                                start: 0,
                                len: Entry::UNROUTABLE,
                                zero: 0,
                            });
                        }
                    }
                }
            }
        }
    }

    /// The memoized legs and precomputed zero-load latency for a packet
    /// from `src` to `dst` carrying `tag`, or `None` when no route
    /// avoids the dead set the table was built for.
    #[inline]
    #[must_use]
    pub fn lookup(&self, src: usize, dst: usize, tag: u64) -> Option<(&[PacketLeg], u64)> {
        // Single-class networks (every deterministic router network)
        // skip the per-packet integer division entirely.
        let class = if self.classes == 1 {
            0
        } else {
            (tag % self.classes as u64) as usize
        };
        let i = (src * self.nodes + dst) * self.classes + class;
        let entry = self.entries[i];
        if entry.len == Entry::UNROUTABLE {
            return None;
        }
        let start = entry.start as usize;
        Some((&self.legs[start..start + entry.len as usize], entry.zero))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::SharedBus;
    use cryowire_device::Temperature;

    #[test]
    fn table_matches_direct_calls_on_a_bus() {
        let bus = SharedBus::new(64, Temperature::liquid_nitrogen());
        let mut table = PathTable::new();
        table.rebuild(&bus, &[]);
        for (src, dst, tag) in [(0usize, 1usize, 0u64), (3, 60, 7), (10, 2, u64::MAX)] {
            let (legs, zero) = table.lookup(src, dst, tag).expect("routable");
            let direct = bus.path(src, dst, tag);
            assert_eq!(legs, direct.as_slice());
            assert_eq!(zero, direct.iter().map(|l| l.traversal_cycles).sum::<u64>());
        }
    }

    #[test]
    fn dead_way_marks_unroutable_or_remaps() {
        let bus = SharedBus::new(64, Temperature::liquid_nitrogen());
        // The single-way bus has no alternative: killing resource 0 makes
        // every entry unroutable.
        let mut table = PathTable::new();
        table.rebuild(&bus, &[0]);
        assert!(table.lookup(0, 1, 0).is_none());
    }

    #[test]
    fn identical_routes_are_hash_consed() {
        // Every (src, dst) pair of the single-way bus takes the same
        // route, so the whole 64-node arena holds exactly one path.
        let bus = SharedBus::new(64, Temperature::liquid_nitrogen());
        let mut table = PathTable::new();
        table.rebuild(&bus, &[]);
        let one_path = bus.path(0, 1, 0).len();
        assert_eq!(table.legs.len(), one_path, "bus arena should dedupe");
        assert_eq!(table.entries.len(), 64 * 64);
    }

    #[test]
    fn rebuild_reuses_allocations() {
        let bus = SharedBus::new(64, Temperature::liquid_nitrogen());
        let mut table = PathTable::new();
        table.rebuild(&bus, &[]);
        let cap = (table.entries.capacity(), table.legs.capacity());
        table.rebuild(&bus, &[]);
        assert_eq!(
            cap,
            (table.entries.capacity(), table.legs.capacity()),
            "rebuild must not reallocate the arena"
        );
    }
}
