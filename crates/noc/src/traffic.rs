//! Synthetic traffic patterns (Section 5.1 / Section 7.2).
//!
//! Uniform random drives the main load–latency analyses (Fig. 18/21);
//! Transpose, Hotspot, Bit Reverse and Burst cover Fig. 25.

use rand::rngs::StdRng;
use rand::Rng;

use crate::error::NocError;
use crate::topology::Topology;

/// A synthetic traffic pattern over `n` nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TrafficPattern {
    /// Every packet picks a uniformly random destination (≠ source).
    UniformRandom,
    /// Grid transpose: (x, y) → (y, x); diagonal nodes fall back to
    /// uniform random.
    Transpose,
    /// A fraction of traffic targets one hot node; the rest is uniform.
    Hotspot {
        /// The hot node.
        node: usize,
        /// Fraction of packets that go to the hot node (0..1).
        fraction: f64,
    },
    /// Destination is the bit-reversed source index.
    BitReverse,
    /// Uniform random destinations, but injection happens in on/off
    /// bursts (handled by [`TrafficPattern::burst_scale`]).
    Burst {
        /// Mean burst length in cycles.
        burst_len: f64,
        /// Ratio of on-period injection rate to the average rate.
        intensity: f64,
    },
}

impl TrafficPattern {
    /// The Fig. 25 hotspot configuration: 10 % of traffic to node 0.
    #[must_use]
    pub fn hotspot_default() -> Self {
        TrafficPattern::Hotspot {
            node: 0,
            fraction: 0.1,
        }
    }

    /// The Fig. 25 burst configuration: 8-cycle bursts at 4x intensity.
    #[must_use]
    pub fn burst_default() -> Self {
        TrafficPattern::Burst {
            burst_len: 8.0,
            intensity: 4.0,
        }
    }

    /// Validates pattern parameters against a topology.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] for hot nodes out of range or non-probability
    /// fractions.
    pub fn validate(&self, topo: &Topology) -> Result<(), NocError> {
        match *self {
            TrafficPattern::Hotspot { node, fraction } => {
                if node >= topo.nodes() {
                    return Err(NocError::NodeOutOfRange {
                        node,
                        nodes: topo.nodes(),
                    });
                }
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(NocError::InvalidInjectionRate { rate: fraction });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Picks a destination for a packet from `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range for `topo`.
    pub fn destination(&self, src: usize, topo: &Topology, rng: &mut StdRng) -> usize {
        assert!(src < topo.nodes(), "source out of range");
        match *self {
            TrafficPattern::UniformRandom | TrafficPattern::Burst { .. } => {
                uniform_other(src, topo.nodes(), rng)
            }
            TrafficPattern::Transpose => {
                let (x, y) = topo.coords(src);
                let dst = topo.node_at(y, x);
                if dst == src {
                    uniform_other(src, topo.nodes(), rng)
                } else {
                    dst
                }
            }
            TrafficPattern::Hotspot { node, fraction } => {
                if rng.gen::<f64>() < fraction && node != src {
                    node
                } else {
                    uniform_other(src, topo.nodes(), rng)
                }
            }
            TrafficPattern::BitReverse => {
                let bits = usize::BITS - (topo.nodes() - 1).leading_zeros();
                let rev = reverse_bits(src, bits as usize) % topo.nodes();
                if rev == src {
                    uniform_other(src, topo.nodes(), rng)
                } else {
                    rev
                }
            }
        }
    }

    /// Injection-rate multiplier for cycle `cycle` (burst on/off shaping;
    /// 1.0 for non-bursty patterns). The long-run average stays equal to
    /// the configured rate.
    #[must_use]
    pub fn burst_scale(&self, cycle: u64) -> f64 {
        match *self {
            TrafficPattern::Burst {
                burst_len,
                intensity,
            } => {
                // Deterministic on/off square wave with duty 1/intensity:
                // on-periods inject at `intensity` × rate.
                let period = (burst_len * intensity).max(1.0) as u64;
                let on = burst_len.max(1.0) as u64;
                if cycle % period < on {
                    intensity
                } else {
                    0.0
                }
            }
            _ => 1.0,
        }
    }
}

fn uniform_other(src: usize, n: usize, rng: &mut StdRng) -> usize {
    loop {
        let d = rng.gen_range(0..n);
        if d != src {
            return d;
        }
    }
}

fn reverse_bits(v: usize, bits: usize) -> usize {
    let mut out = 0;
    for i in 0..bits {
        if v & (1 << i) != 0 {
            out |= 1 << (bits - 1 - i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_never_self() {
        let topo = Topology::c64();
        let mut r = rng();
        for src in 0..64 {
            for _ in 0..20 {
                let d = TrafficPattern::UniformRandom.destination(src, &topo, &mut r);
                assert_ne!(d, src);
                assert!(d < 64);
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let topo = Topology::c64();
        let mut r = rng();
        let src = topo.node_at(2, 5);
        let dst = TrafficPattern::Transpose.destination(src, &topo, &mut r);
        assert_eq!(dst, topo.node_at(5, 2));
    }

    #[test]
    fn bit_reverse_is_involution_off_diagonal() {
        let topo = Topology::c64();
        let mut r = rng();
        let src = 1; // 000001 -> 100000 = 32
        let dst = TrafficPattern::BitReverse.destination(src, &topo, &mut r);
        assert_eq!(dst, 32);
        let back = TrafficPattern::BitReverse.destination(dst, &topo, &mut r);
        assert_eq!(back, 1);
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let topo = Topology::c64();
        let mut r = rng();
        let pat = TrafficPattern::Hotspot {
            node: 7,
            fraction: 0.5,
        };
        let mut hits = 0;
        let trials = 2_000;
        for _ in 0..trials {
            if pat.destination(3, &topo, &mut r) == 7 {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!(frac > 0.4 && frac < 0.6, "hotspot fraction = {frac}");
    }

    #[test]
    fn hotspot_validation() {
        let topo = Topology::c64();
        assert!(TrafficPattern::Hotspot {
            node: 99,
            fraction: 0.1
        }
        .validate(&topo)
        .is_err());
        assert!(TrafficPattern::Hotspot {
            node: 0,
            fraction: 1.5
        }
        .validate(&topo)
        .is_err());
        assert!(TrafficPattern::hotspot_default().validate(&topo).is_ok());
    }

    #[test]
    fn burst_long_run_average_is_unity() {
        let pat = TrafficPattern::burst_default();
        let total: f64 = (0..32_000).map(|c| pat.burst_scale(c)).sum();
        let avg = total / 32_000.0;
        assert!((avg - 1.0).abs() < 0.05, "burst average scale = {avg}");
    }

    #[test]
    fn non_bursty_scale_is_one() {
        assert_eq!(TrafficPattern::UniformRandom.burst_scale(123), 1.0);
    }
}
