//! CryoBus: the paper's fast, scalable 77 K snooping bus (Section 5.2).
//!
//! CryoBus = H-tree-shaped bus topology + **dynamic link connection**: the
//! H-tree cannot work as a simple bidirectional bus, so cross-link
//! switches at the wire intersections are programmed per transaction by a
//! cross-link controller sitting next to the central **matrix arbiter**.
//! This module implements the actual Fig. 19 mechanism — the matrix
//! arbiter, the H-tree switch fabric, and the
//! request → arbitration → grant+control → broadcast sequence — and wraps
//! the latency/bandwidth behaviour as a [`Network`] for simulation.

use cryowire_device::Temperature;

use crate::bus::{BusKind, SharedBus};
use crate::error::NocError;
use crate::sim::{Network, PacketLeg};
use crate::topology::Topology;

/// A matrix arbiter (Fig. 19 ② Arbitration): least-recently-granted
/// priority encoded as an N×N boolean matrix.
#[derive(Debug, Clone)]
pub struct MatrixArbiter {
    /// `prio[i][j]` = true means requester i beats requester j.
    prio: Vec<Vec<bool>>,
}

impl MatrixArbiter {
    /// Creates an arbiter for `n` requesters with initial priority by
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        let prio = (0..n).map(|i| (0..n).map(|j| i < j).collect()).collect();
        MatrixArbiter { prio }
    }

    /// Number of requesters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prio.len()
    }

    /// True if the arbiter has no requesters (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prio.is_empty()
    }

    /// Restores the initial by-index priority matrix in place, so a
    /// scratch-held arbiter starts every run from the same state a
    /// freshly built one would.
    pub fn reset(&mut self) {
        for (i, row) in self.prio.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = i < j;
            }
        }
    }

    /// Grants one requester among `requests` (true = requesting), updating
    /// the priority matrix so the winner drops to lowest priority.
    /// Returns `None` when nobody requests.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter size.
    pub fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.len(), "request vector size mismatch");
        let n = self.len();
        let winner = (0..n)
            .find(|&i| requests[i] && (0..n).all(|j| j == i || !requests[j] || self.prio[i][j]))?;
        // Winner yields priority to everyone else.
        for j in 0..n {
            if j != winner {
                self.prio[winner][j] = false;
                self.prio[j][winner] = true;
            }
        }
        Some(winner)
    }
}

/// Direction a cross-link switch is set to (Fig. 19 ③ Control).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchState {
    /// Signal flows from this subtree up toward the root.
    TowardRoot,
    /// Signal flows from the root down into this subtree.
    FromRoot,
}

/// The H-tree switch fabric: a 4-ary tree over the cores with cross-link
/// switches at every internal node.
#[derive(Debug, Clone)]
pub struct HTreeFabric {
    levels: usize,
    nodes: usize,
}

impl HTreeFabric {
    /// Builds the fabric for `nodes` cores (must be a power of four).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidNodeCount`] otherwise.
    pub fn new(nodes: usize) -> Result<Self, NocError> {
        let mut levels = 0;
        let mut n = nodes;
        while n > 1 && n.is_multiple_of(4) {
            n /= 4;
            levels += 1;
        }
        if n != 1 || levels == 0 {
            return Err(NocError::InvalidNodeCount {
                nodes,
                requirement: "H-tree requires a power-of-four core count",
            });
        }
        Ok(HTreeFabric { levels, nodes })
    }

    /// Tree depth (3 for 64 cores).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Computes the switch states along the path from `src` to the root:
    /// its own branch points toward the root, every other branch away.
    /// Returns the per-level state of the source's branch.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn program_for_source(&self, src: usize) -> Vec<SwitchState> {
        assert!(src < self.nodes, "source out of range");
        (0..self.levels).map(|_| SwitchState::TowardRoot).collect()
    }

    /// The set of cores a broadcast from `src` reaches with the fabric
    /// programmed by [`HTreeFabric::program_for_source`]: all cores
    /// (the source's branch feeds the root, the root feeds every subtree).
    #[must_use]
    pub fn broadcast_reach(&self, src: usize) -> Vec<usize> {
        let _ = self.program_for_source(src);
        (0..self.nodes).collect()
    }
}

/// The CryoBus network: H-tree bus + dynamic link connection at 77 K,
/// with optional k-way address interleaving (Section 7.1).
#[derive(Debug, Clone)]
pub struct CryoBus {
    inner: SharedBus,
    fabric: HTreeFabric,
    arbiter_size: usize,
}

impl CryoBus {
    /// Builds the 1-way CryoBus over `nodes` cores at temperature `t`.
    ///
    /// # Panics
    ///
    /// Panics for invalid node counts; use [`CryoBus::try_new`] to handle
    /// them.
    #[must_use]
    pub fn new(nodes: usize, t: Temperature) -> Self {
        CryoBus::try_new(nodes, t, 1).expect("valid CryoBus configuration")
    }

    /// Builds a `ways`-way interleaved CryoBus.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] for node counts that are not powers of four or
    /// zero ways.
    pub fn try_new(nodes: usize, t: Temperature, ways: usize) -> Result<Self, NocError> {
        CryoBus::try_new_at_clock(nodes, t, ways, 4.0)
    }

    /// Builds a CryoBus with an explicit bus clock (GHz).
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] for node counts that are not powers of four or
    /// zero ways.
    pub fn try_new_at_clock(
        nodes: usize,
        t: Temperature,
        ways: usize,
        clock_ghz: f64,
    ) -> Result<Self, NocError> {
        let inner = SharedBus::with_kind_at_clock(BusKind::HTree, nodes, t, ways, clock_ghz)?;
        let fabric = HTreeFabric::new(nodes)?;
        Ok(CryoBus {
            inner,
            fabric,
            arbiter_size: nodes,
        })
    }

    /// The 2-way interleaved variant of Section 7.1.
    ///
    /// # Panics
    ///
    /// Never panics for the fixed valid configuration.
    #[must_use]
    pub fn two_way(nodes: usize, t: Temperature) -> Self {
        CryoBus::try_new(nodes, t, 2).expect("valid 2-way CryoBus")
    }

    /// Bus occupancy per broadcast, cycles (1 at 77 K — Fig. 20).
    #[must_use]
    pub fn occupancy_cycles(&self) -> u64 {
        self.inner.occupancy_cycles()
    }

    /// Zero-load transaction latency decomposition (Fig. 20).
    #[must_use]
    pub fn latency_breakdown(&self) -> (u64, u64, u64, u64) {
        self.inner.latency_breakdown()
    }

    /// Total zero-load transaction latency, cycles.
    #[must_use]
    pub fn transaction_latency(&self) -> u64 {
        self.inner.transaction_latency()
    }

    /// Saturation injection rate per core.
    #[must_use]
    pub fn saturation_rate_per_core(&self) -> f64 {
        self.inner.saturation_rate_per_core()
    }

    /// Interleaving ways.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.inner.ways()
    }

    /// Bus clock, GHz.
    #[must_use]
    pub fn clock_ghz(&self) -> f64 {
        self.inner.clock_ghz()
    }

    /// Operating temperature.
    #[must_use]
    pub fn temperature(&self) -> Temperature {
        self.inner.temperature()
    }

    /// A fresh matrix arbiter of the right size (the mechanism of
    /// Fig. 19 ②).
    #[must_use]
    pub fn arbiter(&self) -> MatrixArbiter {
        MatrixArbiter::new(self.arbiter_size)
    }

    /// The H-tree switch fabric (the mechanism of Fig. 19 ③/④).
    #[must_use]
    pub fn fabric(&self) -> &HTreeFabric {
        &self.fabric
    }

    /// Wire hops the dynamic link connection pays to detour around one
    /// dead segment at `level` (0 = root-adjacent, the longest
    /// segments): the broadcast leaves through the neighbouring branch
    /// and re-enters below the dead segment, adding twice the segment's
    /// own length.
    fn segment_detour_hops(&self, level: usize) -> usize {
        let to_center = self.inner.topology().htree_to_center_hops();
        2 * (to_center >> (level + 1)).max(1)
    }

    /// Re-forms the dynamic link connection around dead H-tree segments
    /// (`(level, index)` pairs), returning the degraded bus.
    ///
    /// The cross-link switches reroute each affected branch through its
    /// neighbour, so the bus keeps broadcasting to all cores — at a
    /// longer worst-case span, which the wire-link model converts back
    /// into (possibly higher) broadcast cycles. Killing segments can
    /// therefore cost bandwidth (occupancy) and latency but never
    /// disconnects the bus.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidHTreeSegment`] for a level the fabric
    /// does not have or an index beyond the `4^(level+1)` segments of
    /// that level.
    pub fn reform_around(&self, dead_segments: &[(usize, usize)]) -> Result<CryoBus, NocError> {
        let levels = self.fabric.levels();
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut extra_span_hops = 0usize;
        for &(level, index) in dead_segments {
            if level >= levels || index >= 4usize.pow(level as u32 + 1) {
                return Err(NocError::InvalidHTreeSegment {
                    level,
                    index,
                    levels,
                });
            }
            if seen.contains(&(level, index)) {
                continue;
            }
            seen.push((level, index));
            extra_span_hops += self.segment_detour_hops(level);
        }
        let inner = SharedBus::with_kind_at_clock_detoured(
            BusKind::HTree,
            self.inner.topology().nodes(),
            self.inner.temperature(),
            self.ways(),
            self.clock_ghz(),
            extra_span_hops,
        )?;
        Ok(CryoBus {
            inner,
            fabric: self.fabric.clone(),
            arbiter_size: self.arbiter_size,
        })
    }
}

impl Network for CryoBus {
    fn name(&self) -> String {
        if self.ways() > 1 {
            format!("CryoBus ({}-way)", self.ways())
        } else {
            "CryoBus".to_string()
        }
    }

    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn resource_count(&self) -> usize {
        self.inner.resource_count()
    }

    fn path(&self, src: usize, dst: usize, tag: u64) -> Vec<PacketLeg> {
        self.inner.path(src, dst, tag)
    }

    fn path_avoiding(
        &self,
        src: usize,
        dst: usize,
        tag: u64,
        dead: &[usize],
    ) -> Option<Vec<PacketLeg>> {
        // Way resources remap exactly as on the underlying bus.
        self.inner.path_avoiding(src, dst, tag, dead)
    }

    fn route_classes(&self, dead: &[usize]) -> usize {
        self.inner.route_classes(dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t77() -> Temperature {
        Temperature::liquid_nitrogen()
    }

    #[test]
    fn one_cycle_broadcast_at_77k() {
        // Fig. 20: the headline CryoBus property.
        let bus = CryoBus::new(64, t77());
        assert_eq!(bus.occupancy_cycles(), 1);
    }

    #[test]
    fn fig20_breakdown_shape() {
        let bus = CryoBus::new(64, t77());
        let (req, arb, grant, bcast) = bus.latency_breakdown();
        assert_eq!(req, 1);
        assert_eq!(arb, 1);
        assert_eq!(grant, 2); // grant + control-signal generation cycle
        assert_eq!(bcast, 1);
        assert_eq!(bus.transaction_latency(), 5);
    }

    #[test]
    fn five_times_faster_than_300k_mesh_zero_load() {
        // Abstract: "five times lower NoC latency of CryoBus" vs 300 K
        // Mesh.
        use crate::router::{RouterClass, RouterNetwork};
        let cryo = CryoBus::new(64, t77());
        let mesh = RouterNetwork::mesh64(RouterClass::OneCycle, Temperature::ambient());
        let ratio = mesh.average_zero_load_latency() / cryo.average_zero_load_latency();
        assert!(ratio > 2.0, "CryoBus vs 300 K Mesh latency ratio = {ratio}");
    }

    #[test]
    fn arbiter_grants_exactly_one() {
        let mut arb = MatrixArbiter::new(8);
        let mut requests = vec![false; 8];
        requests[3] = true;
        requests[5] = true;
        let g = arb.arbitrate(&requests).unwrap();
        assert!(g == 3 || g == 5);
    }

    #[test]
    fn arbiter_none_without_requests() {
        let mut arb = MatrixArbiter::new(4);
        assert_eq!(arb.arbitrate(&[false; 4]), None);
    }

    #[test]
    fn arbiter_is_fair_under_constant_contention() {
        // Least-recently-granted: with everyone requesting, grants must
        // rotate through all requesters.
        let n = 8;
        let mut arb = MatrixArbiter::new(n);
        let requests = vec![true; n];
        let mut counts = vec![0usize; n];
        for _ in 0..(n * 10) {
            let g = arb.arbitrate(&requests).unwrap();
            counts[g] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(c, 10, "requester {i} granted {c} times");
        }
    }

    #[test]
    fn arbiter_never_starves() {
        // A low-priority requester facing a constantly-requesting rival
        // must still be granted eventually.
        let mut arb = MatrixArbiter::new(2);
        let mut granted1 = false;
        for _ in 0..4 {
            if arb.arbitrate(&[true, true]).unwrap() == 1 {
                granted1 = true;
            }
        }
        assert!(granted1);
    }

    #[test]
    fn fabric_levels_for_64_cores() {
        let f = HTreeFabric::new(64).unwrap();
        assert_eq!(f.levels(), 3);
    }

    #[test]
    fn fabric_rejects_non_power_of_four() {
        assert!(HTreeFabric::new(32).is_err());
        assert!(HTreeFabric::new(0).is_err());
        assert!(HTreeFabric::new(1).is_err());
        assert!(HTreeFabric::new(256).is_ok());
    }

    #[test]
    fn broadcast_reaches_every_core() {
        // Fig. 19 ④: after programming, the broadcast reaches all cores.
        let f = HTreeFabric::new(64).unwrap();
        for src in [0, 31, 63] {
            let reach = f.broadcast_reach(src);
            assert_eq!(reach.len(), 64);
        }
    }

    #[test]
    fn reform_keeps_broadcasting_at_longer_span() {
        let bus = CryoBus::new(64, t77());
        // Kill one root-adjacent segment (the longest detour).
        let degraded = bus.reform_around(&[(0, 1)]).unwrap();
        // Still a working broadcast bus over all 64 cores...
        assert_eq!(degraded.topology().nodes(), 64);
        // ...but the single-cycle broadcast is lost: the detour adds
        // 2×3 = 6 hops to the 12-hop span, pushing past 12 hops/cycle.
        assert!(degraded.occupancy_cycles() > bus.occupancy_cycles());
        assert!(degraded.transaction_latency() > bus.transaction_latency());
    }

    #[test]
    fn reform_dedupes_and_validates_segments() {
        let bus = CryoBus::new(64, t77());
        let a = bus.reform_around(&[(1, 3)]).unwrap();
        let b = bus.reform_around(&[(1, 3), (1, 3)]).unwrap();
        assert_eq!(a.transaction_latency(), b.transaction_latency());
        assert!(bus.reform_around(&[(3, 0)]).is_err(), "level beyond tree");
        assert!(bus.reform_around(&[(0, 4)]).is_err(), "index beyond level");
    }

    #[test]
    fn reform_with_no_dead_segments_is_identity() {
        let bus = CryoBus::new(64, t77());
        let same = bus.reform_around(&[]).unwrap();
        assert_eq!(same.occupancy_cycles(), bus.occupancy_cycles());
        assert_eq!(same.transaction_latency(), bus.transaction_latency());
    }

    #[test]
    fn two_way_doubles_bandwidth() {
        let one = CryoBus::new(64, t77());
        let two = CryoBus::two_way(64, t77());
        let r = two.saturation_rate_per_core() / one.saturation_rate_per_core();
        assert!((r - 2.0).abs() < 1e-12);
    }
}
