//! Topology descriptors for the evaluated NoCs (Fig. 15).

use std::fmt;

use crate::error::NocError;

/// The NoC designs evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum NocKind {
    /// 8x8 2D mesh with XY routing (Fig. 15a).
    Mesh,
    /// Concentrated mesh: 4 cores per router on a 4x4 mesh (Fig. 15c).
    CMesh,
    /// Flattened butterfly: 4-core concentration, routers fully connected
    /// per row and per column (Fig. 15b).
    FlattenedButterfly,
    /// Conventional bidirectional snooping bus scaled to 64 cores
    /// (Fig. 15d).
    SharedBus,
    /// H-tree-shaped bus without the dynamic link connection (the 300 K
    /// H-tree of Fig. 20).
    HTreeBus,
    /// The paper's CryoBus: H-tree bus + dynamic link connection.
    CryoBus,
}

impl NocKind {
    /// All evaluated kinds.
    pub const ALL: [NocKind; 6] = [
        NocKind::Mesh,
        NocKind::CMesh,
        NocKind::FlattenedButterfly,
        NocKind::SharedBus,
        NocKind::HTreeBus,
        NocKind::CryoBus,
    ];

    /// Whether this NoC uses routers (directory coherence) or a bus
    /// (snooping).
    #[must_use]
    pub fn is_bus(self) -> bool {
        matches!(
            self,
            NocKind::SharedBus | NocKind::HTreeBus | NocKind::CryoBus
        )
    }
}

impl fmt::Display for NocKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NocKind::Mesh => "Mesh",
            NocKind::CMesh => "CMesh",
            NocKind::FlattenedButterfly => "Flattened Butterfly",
            NocKind::SharedBus => "Shared bus",
            NocKind::HTreeBus => "H-tree bus",
            NocKind::CryoBus => "CryoBus",
        };
        f.write_str(s)
    }
}

/// Grid geometry of an n-core die and distance helpers (2 mm tile pitch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    nodes: usize,
    side: usize,
}

impl Topology {
    /// Creates a square-grid topology for `nodes` cores.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidNodeCount`] unless `nodes` is a nonzero
    /// perfect square.
    pub fn square(nodes: usize) -> Result<Self, NocError> {
        let side = (nodes as f64).sqrt().round() as usize;
        if nodes == 0 || side * side != nodes {
            return Err(NocError::InvalidNodeCount {
                nodes,
                requirement: "square grid requires a nonzero perfect square",
            });
        }
        Ok(Topology { nodes, side })
    }

    /// The paper's 64-core die.
    ///
    /// # Panics
    ///
    /// Never panics (64 is a perfect square).
    #[must_use]
    pub fn c64() -> Self {
        Topology::square(64).expect("64 is a perfect square")
    }

    /// Total node count.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Grid side length.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Grid coordinates of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn coords(&self, n: usize) -> (usize, usize) {
        assert!(n < self.nodes, "node {n} out of range");
        (n % self.side, n / self.side)
    }

    /// Node at grid coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn node_at(&self, x: usize, y: usize) -> usize {
        assert!(x < self.side && y < self.side, "({x},{y}) out of range");
        y * self.side + x
    }

    /// Manhattan hop distance between two nodes (1 hop = one 2 mm tile).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[must_use]
    pub fn manhattan_hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Hop distance from node `n` to the die center (where CryoBus's
    /// arbiter sits).
    #[must_use]
    pub fn hops_to_center(&self, n: usize) -> usize {
        let (x, y) = self.coords(n);
        // Center of an even-sided grid sits between tiles; use the
        // nearer of the two central columns/rows.
        let c_lo = self.side / 2 - 1;
        let c_hi = self.side / 2;
        let dx = x.abs_diff(c_lo).min(x.abs_diff(c_hi));
        let dy = y.abs_diff(c_lo).min(y.abs_diff(c_hi));
        dx + dy
    }

    /// Maximum snake-order distance on the bidirectional shared bus: the
    /// bus wires snake across the grid but the paper's scaled conventional
    /// bus routes as a balanced spine, giving a ~30-hop maximum span on
    /// the 64-core die (Section 5.2.1).
    #[must_use]
    pub fn shared_bus_max_hops(&self) -> usize {
        // Balanced spine: half the perimeter plus spine length.
        // For 8x8 this is 30, matching the paper.
        self.side * 4 - 2
    }

    /// Maximum core-to-core distance on the H-tree bus: 12 hops on the
    /// 64-core die (Section 5.2.1).
    #[must_use]
    pub fn htree_max_hops(&self) -> usize {
        // Up the H-tree to the root and back down: ~1.5 × side.
        (3 * self.side) / 2
    }

    /// Maximum core-to-arbiter distance on the H-tree (half the broadcast
    /// span).
    #[must_use]
    pub fn htree_to_center_hops(&self) -> usize {
        self.htree_max_hops() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c64_is_8x8() {
        let t = Topology::c64();
        assert_eq!(t.nodes(), 64);
        assert_eq!(t.side(), 8);
    }

    #[test]
    fn rejects_non_square() {
        assert!(Topology::square(63).is_err());
        assert!(Topology::square(0).is_err());
        assert!(Topology::square(65).is_err());
        assert!(Topology::square(49).is_ok());
    }

    #[test]
    fn coords_roundtrip() {
        let t = Topology::c64();
        for n in 0..64 {
            let (x, y) = t.coords(n);
            assert_eq!(t.node_at(x, y), n);
        }
    }

    #[test]
    fn manhattan_is_symmetric_and_triangle() {
        let t = Topology::c64();
        for a in 0..64 {
            for b in 0..64 {
                assert_eq!(t.manhattan_hops(a, b), t.manhattan_hops(b, a));
            }
        }
        assert_eq!(t.manhattan_hops(0, 63), 14);
        assert_eq!(t.manhattan_hops(5, 5), 0);
    }

    #[test]
    fn paper_anchor_shared_bus_30_hops() {
        // Section 5.2.1: "maximum distance between the cores is ... 30 hops
        // in the baseline Shared bus".
        assert_eq!(Topology::c64().shared_bus_max_hops(), 30);
    }

    #[test]
    fn paper_anchor_htree_12_hops() {
        // Section 5.2.1: "only 12 hops in CryoBus".
        assert_eq!(Topology::c64().htree_max_hops(), 12);
    }

    #[test]
    fn center_distance_bounded() {
        let t = Topology::c64();
        for n in 0..64 {
            assert!(t.hops_to_center(n) <= 7);
        }
        // Corner nodes are farthest.
        assert_eq!(t.hops_to_center(0), 6);
    }

    #[test]
    fn kind_classification() {
        assert!(NocKind::CryoBus.is_bus());
        assert!(NocKind::SharedBus.is_bus());
        assert!(!NocKind::Mesh.is_bus());
        assert_eq!(NocKind::Mesh.to_string(), "Mesh");
    }
}
