//! Segmented bus (Udipi et al., HPCA'10) — the related-work baseline the
//! paper positions CryoBus against (Section 8, "Large-scale bus").
//!
//! The spine bus is split into `segments` sections joined by isolation
//! switches. A transaction only drives the sections between the source
//! and every snooper that must see it — for a snooping *broadcast* that
//! is still the whole bus, but the common unicast data response only
//! activates the sections on its path, saving energy and, with multiple
//! simultaneous non-overlapping transfers, some bandwidth. Comparing it
//! with CryoBus isolates what the H-tree + dynamic link connection add
//! beyond plain segmentation.

use cryowire_device::Temperature;

use crate::error::NocError;
use crate::link::LinkModel;
use crate::sim::{Network, PacketLeg};
use crate::topology::Topology;

/// A segmented spine bus.
#[derive(Debug, Clone)]
pub struct SegmentedBus {
    topo: Topology,
    temperature: Temperature,
    segments: usize,
    /// Cycles to cross one segment's wire span.
    segment_cycles: u64,
    /// Arbitration + request/grant latency (as the conventional bus).
    control_cycles: u64,
    /// Switch crossing latency between adjacent segments, cycles.
    switch_cycles: u64,
}

impl SegmentedBus {
    /// Builds a spine bus over `nodes` cores split into `segments`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] for invalid node counts or zero segments.
    pub fn new(nodes: usize, segments: usize, t: Temperature) -> Result<Self, NocError> {
        if segments == 0 {
            return Err(NocError::InvalidNodeCount {
                nodes: segments,
                requirement: "need at least one segment",
            });
        }
        let topo = Topology::square(nodes)?;
        let link = LinkModel::new();
        let clock = 4.0;
        let span = topo.shared_bus_max_hops();
        let seg_hops = span.div_ceil(segments);
        let to_center = span / 2;
        Ok(SegmentedBus {
            topo,
            temperature: t,
            segments,
            segment_cycles: link.traversal_cycles(seg_hops, t, clock).max(1) as u64,
            control_cycles: 2 * link.traversal_cycles(to_center, t, clock) as u64 + 1,
            switch_cycles: 1,
        })
    }

    /// Number of segments.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Broadcast latency (crossing every segment and switch), cycles.
    #[must_use]
    pub fn broadcast_cycles(&self) -> u64 {
        self.segments as u64 * self.segment_cycles + (self.segments as u64 - 1) * self.switch_cycles
    }

    /// Which segment a core's bus tap sits on (by spine order).
    fn segment_of(&self, core: usize) -> usize {
        core * self.segments / self.topo.nodes()
    }

    /// Fraction of segments a unicast between two cores activates —
    /// the energy advantage over the monolithic bus.
    #[must_use]
    pub fn activation_fraction(&self, src: usize, dst: usize) -> f64 {
        let a = self.segment_of(src);
        let b = self.segment_of(dst);
        (a.abs_diff(b) + 1) as f64 / self.segments as f64
    }
}

impl Network for SegmentedBus {
    fn name(&self) -> String {
        format!(
            "Segmented bus ({} segs) @ {}",
            self.segments, self.temperature
        )
    }

    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn resource_count(&self) -> usize {
        self.segments
    }

    fn path(&self, src: usize, dst: usize, _tag: u64) -> Vec<PacketLeg> {
        // Snooping request: the broadcast must drive every segment, but
        // segments are claimed in sequence from the source outward —
        // modelled as holding each segment for its crossing time.
        let mut legs = vec![PacketLeg::latency(self.control_cycles)];
        let start = self.segment_of(src);
        let _ = dst;
        // Order segments by distance from the source (both directions
        // propagate concurrently; the far side dominates latency, so we
        // charge the longer arm and hold every segment).
        let left = start;
        let right = self.segments - 1 - start;
        let arm = left.max(right) as u64;
        for s in 0..self.segments {
            let occupancy = self.segment_cycles + self.switch_cycles;
            // Only the longest arm contributes to latency.
            let traversal = if s as u64 <= arm {
                self.segment_cycles
            } else {
                0
            };
            legs.push(PacketLeg::on(s, occupancy, traversal));
        }
        legs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::SharedBus;
    use crate::cryobus::CryoBus;

    fn t77() -> Temperature {
        Temperature::liquid_nitrogen()
    }

    #[test]
    fn segmentation_does_not_beat_the_monolithic_broadcast() {
        // For snooping broadcasts, segment switches only add crossings:
        // the paper's point that plain segmentation cannot reach the
        // 1-cycle target.
        let seg = SegmentedBus::new(64, 4, t77()).unwrap();
        let mono = SharedBus::new(64, t77());
        assert!(seg.broadcast_cycles() >= mono.occupancy_cycles());
    }

    #[test]
    fn cryobus_beats_segmented_bus_on_latency() {
        let seg = SegmentedBus::new(64, 4, t77()).unwrap();
        let cryo = CryoBus::new(64, t77());
        assert!(
            cryo.transaction_latency() < seg.zero_load_latency(0, 63),
            "CryoBus {} vs segmented {}",
            cryo.transaction_latency(),
            seg.zero_load_latency(0, 63)
        );
    }

    #[test]
    fn unicast_activation_shrinks_with_more_segments() {
        // The energy win segmentation *does* deliver.
        let few = SegmentedBus::new(64, 2, t77()).unwrap();
        let many = SegmentedBus::new(64, 8, t77()).unwrap();
        // Neighbouring cores:
        assert!(many.activation_fraction(0, 1) < few.activation_fraction(0, 1));
        // Far cores still activate everything.
        assert!((many.activation_fraction(0, 63) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_segments() {
        assert!(SegmentedBus::new(64, 0, t77()).is_err());
    }

    #[test]
    fn zero_load_latency_reasonable() {
        let seg = SegmentedBus::new(64, 4, t77()).unwrap();
        let z = seg.zero_load_latency(0, 63);
        assert!(z >= seg.control_cycles + seg.segment_cycles);
        assert!(z < 64);
    }
}
