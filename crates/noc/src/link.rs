//! Global-wire link speed model (the CACTI-NUCA wire-link substitute,
//! Section 3.1.3 / 5.1).
//!
//! The paper anchors 300 K links at 0.064 ns per 2 mm hop (CACTI-NUCA,
//! 45 nm), i.e. ~4 hops per 4 GHz cycle, and derives 77 K links from the
//! re-optimized repeated global wire (~3x faster ⇒ 12 hops/cycle). We keep
//! the 300 K anchor and scale it with the *computed* repeated-wire speed-up
//! from the device models, so the whole temperature range is available.

use cryowire_device::{calib, MosfetModel, RepeaterOptimizer, Temperature, Wire, WireClass};

/// Physical hop length on the 8x8 64-core die, mm (one tile pitch).
pub const HOP_LENGTH_MM: f64 = 2.0;

/// Wire-link speed model: hop delay and hops-per-cycle at any temperature.
///
/// ```
/// use cryowire_device::Temperature;
/// use cryowire_noc::LinkModel;
///
/// let link = LinkModel::new();
/// let h300 = link.hops_per_cycle(Temperature::ambient(), 4.0);
/// let h77 = link.hops_per_cycle(Temperature::liquid_nitrogen(), 4.0);
/// assert_eq!(h300, 4);
/// assert_eq!(h77, 12);
/// ```
#[derive(Debug, Clone)]
pub struct LinkModel {
    optimizer: RepeaterOptimizer,
    /// Reference 2 mm hop delay at 300 K, ns (CACTI-NUCA anchor).
    hop_delay_300k_ns: f64,
}

impl LinkModel {
    /// Creates the model with the paper's 45 nm anchors.
    #[must_use]
    pub fn new() -> Self {
        LinkModel {
            optimizer: RepeaterOptimizer::new(&MosfetModel::industry_45nm()),
            hop_delay_300k_ns: calib::LINK_DELAY_300K_NS_PER_2MM,
        }
    }

    /// Speed-up of a re-optimized 2 mm global link at `t` vs 300 K.
    #[must_use]
    pub fn speedup(&self, t: Temperature) -> f64 {
        let wire = Wire::new(WireClass::Global, HOP_LENGTH_MM * 1_000.0);
        self.optimizer.speedup(&wire, t)
    }

    /// Delay of one 2 mm hop at `t`, ns.
    #[must_use]
    pub fn hop_delay_ns(&self, t: Temperature) -> f64 {
        self.hop_delay_300k_ns / self.speedup(t)
    }

    /// How many 2 mm hops a signal traverses within one clock cycle at
    /// `clock_ghz` (at least 1).
    #[must_use]
    pub fn hops_per_cycle(&self, t: Temperature, clock_ghz: f64) -> usize {
        let cycle_ns = 1.0 / clock_ghz;
        // The paper quotes rounded hop counts (0.25 ns / 0.064 ns ⇒ "4
        // hops/cycle"), so we round rather than floor.
        ((cycle_ns / self.hop_delay_ns(t)).round() as usize).max(1)
    }

    /// Cycles needed to traverse `hops` wire hops at `t` and `clock_ghz`
    /// (at least 1).
    #[must_use]
    pub fn traversal_cycles(&self, hops: usize, t: Temperature, clock_ghz: f64) -> usize {
        if hops == 0 {
            return 0;
        }
        let hpc = self.hops_per_cycle(t, clock_ghz);
        hops.div_ceil(hpc)
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_4_hops_per_cycle_at_300k() {
        let link = LinkModel::new();
        assert_eq!(link.hops_per_cycle(Temperature::ambient(), 4.0), 4);
    }

    #[test]
    fn paper_anchor_12_hops_per_cycle_at_77k() {
        let link = LinkModel::new();
        assert_eq!(link.hops_per_cycle(Temperature::liquid_nitrogen(), 4.0), 12);
    }

    #[test]
    fn fig10_link_speedup_near_3x() {
        let link = LinkModel::new();
        let s = link.speedup(Temperature::liquid_nitrogen());
        assert!(s > 2.8 && s < 3.6, "77 K link speedup = {s}");
    }

    #[test]
    fn traversal_cycles_ceil() {
        let link = LinkModel::new();
        let t300 = Temperature::ambient();
        // 30 hops at 4 hops/cycle = 8 cycles (the baseline shared bus
        // broadcast of Section 5.2.1).
        assert_eq!(link.traversal_cycles(30, t300, 4.0), 8);
        // 12 hops at 12 hops/cycle = 1 cycle (CryoBus broadcast).
        assert_eq!(
            link.traversal_cycles(12, Temperature::liquid_nitrogen(), 4.0),
            1
        );
        assert_eq!(link.traversal_cycles(0, t300, 4.0), 0);
    }

    #[test]
    fn speedup_monotone_in_cooling() {
        let link = LinkModel::new();
        let mut last = 0.0;
        for k in [300.0, 200.0, 135.0, 100.0, 77.0] {
            let s = link.speedup(Temperature::new(k).unwrap());
            assert!(s >= last);
            last = s;
        }
    }
}
