//! Error types for the NoC crate.

use std::error::Error;
use std::fmt;

/// Errors produced by NoC construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NocError {
    /// Node count incompatible with the topology (e.g. a mesh needs a
    /// square count, CryoBus needs a power-of-four H-tree).
    InvalidNodeCount {
        /// The rejected count.
        nodes: usize,
        /// What the topology requires.
        requirement: &'static str,
    },
    /// A source or destination node index out of range.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// The network size.
        nodes: usize,
    },
    /// An injection rate that is not a probability.
    InvalidInjectionRate {
        /// The rejected rate.
        rate: f64,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::InvalidNodeCount { nodes, requirement } => {
                write!(f, "invalid node count {nodes}: {requirement}")
            }
            NocError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for a {nodes}-node network")
            }
            NocError::InvalidInjectionRate { rate } => {
                write!(f, "injection rate {rate} must be in [0, 1]")
            }
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NocError::InvalidNodeCount {
            nodes: 63,
            requirement: "mesh requires a perfect square",
        };
        assert!(e.to_string().contains("63"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NocError>();
    }
}
