//! Error types for the NoC crate.

use std::error::Error;
use std::fmt;

/// Errors produced by NoC construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NocError {
    /// Node count incompatible with the topology (e.g. a mesh needs a
    /// square count, CryoBus needs a power-of-four H-tree).
    InvalidNodeCount {
        /// The rejected count.
        nodes: usize,
        /// What the topology requires.
        requirement: &'static str,
    },
    /// A source or destination node index out of range.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// The network size.
        nodes: usize,
    },
    /// An injection rate that is not a probability.
    InvalidInjectionRate {
        /// The rejected rate.
        rate: f64,
    },
    /// A simulation window that can produce no statistics: zero cycles,
    /// or a warm-up period that swallows the whole run.
    InvalidSimWindow {
        /// Total simulated cycles.
        cycles: u64,
        /// Warm-up cycles excluded from statistics.
        warmup: u64,
    },
    /// A fault named an H-tree segment the fabric does not have.
    InvalidHTreeSegment {
        /// Tree level of the named segment.
        level: usize,
        /// Segment index within the level.
        index: usize,
        /// Levels the fabric actually has.
        levels: usize,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::InvalidNodeCount { nodes, requirement } => {
                write!(f, "invalid node count {nodes}: {requirement}")
            }
            NocError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for a {nodes}-node network")
            }
            NocError::InvalidInjectionRate { rate } => {
                write!(f, "injection rate {rate} must be in [0, 1]")
            }
            NocError::InvalidSimWindow { cycles, warmup } => {
                write!(
                    f,
                    "invalid simulation window: warmup ({warmup}) must be \
                     smaller than cycles ({cycles}), and cycles must be > 0 \
                     — no packet could ever be measured"
                )
            }
            NocError::InvalidHTreeSegment {
                level,
                index,
                levels,
            } => {
                write!(
                    f,
                    "H-tree segment L{level}#{index} does not exist in a {levels}-level fabric"
                )
            }
        }
    }
}

impl Error for NocError {}

/// Errors produced by a fault-injected simulation run.
///
/// Distinct from [`NocError`] (construction/validation problems): a
/// `SimError` describes something that went wrong *during* a run, most
/// importantly the watchdog converting a would-be hang into a
/// structured diagnostic.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The simulation stopped making progress: too many packets had no
    /// usable route (every detour crosses a dead resource).
    Stalled {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// The dead resources blocking traffic when it fired.
        blocked_resources: Vec<usize>,
    },
    /// A validation error surfaced by the underlying simulator.
    Noc(NocError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled {
                cycle,
                blocked_resources,
            } => write!(
                f,
                "simulation stalled at cycle {cycle}: no route around dead resources {blocked_resources:?}"
            ),
            SimError::Noc(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Noc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NocError> for SimError {
    fn from(e: NocError) -> Self {
        SimError::Noc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NocError::InvalidNodeCount {
            nodes: 63,
            requirement: "mesh requires a perfect square",
        };
        assert!(e.to_string().contains("63"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NocError>();
    }
}
