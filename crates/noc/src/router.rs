//! Router-based NoCs: Mesh, Concentrated Mesh, Flattened Butterfly
//! (Fig. 15a–c).
//!
//! Routing is dimension-ordered (XY) for the meshes and two-hop
//! (row then column) for the flattened butterfly. Routers come in two
//! classes (Table 4 / Section 5.2.3): the academic 1-cycle router, which
//! is fully pipelined (a link serializes one flit per cycle), and the
//! industry 3-cycle router, whose switch allocation holds the output for
//! the full pipeline — the conservative assumption behind the paper's
//! "3-cycle" curves in Fig. 21.

use std::sync::Mutex;

use cryowire_device::Temperature;

use crate::deadlock::DetourRouter;
use crate::error::NocError;
use crate::link::LinkModel;
use crate::sim::{Network, PacketLeg};
use crate::topology::{NocKind, Topology};

/// Router pipeline class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterClass {
    /// State-of-the-art 1-cycle router (Park DAC'12, SWIFT).
    OneCycle,
    /// Realistic 3-cycle industry router (Teraflops, SCC).
    ThreeCycle,
}

impl RouterClass {
    /// Pipeline depth in cycles.
    #[must_use]
    pub fn cycles(self) -> u64 {
        match self {
            RouterClass::OneCycle => 1,
            RouterClass::ThreeCycle => 3,
        }
    }

    /// Cycles an output link stays held per packet: fully pipelined for
    /// the 1-cycle router, the whole pipeline for the 3-cycle router.
    #[must_use]
    pub fn occupancy(self) -> u64 {
        match self {
            RouterClass::OneCycle => 1,
            RouterClass::ThreeCycle => 3,
        }
    }
}

/// A router-based network at a given temperature.
#[derive(Debug)]
pub struct RouterNetwork {
    kind: NocKind,
    class: RouterClass,
    topo: Topology,
    router_grid: Topology,
    concentration: usize,
    link_cycles_per_router_hop: u64,
    temperature: Temperature,
    /// Memoized deadlock-validated detour routing for the last dead set
    /// seen by [`Network::path_avoiding`] — the set only changes at
    /// fault boundaries, so one entry is enough.
    detour_cache: Mutex<Option<(Vec<usize>, DetourRouter)>>,
}

impl Clone for RouterNetwork {
    fn clone(&self) -> Self {
        RouterNetwork {
            kind: self.kind,
            class: self.class,
            topo: self.topo,
            router_grid: self.router_grid,
            concentration: self.concentration,
            link_cycles_per_router_hop: self.link_cycles_per_router_hop,
            temperature: self.temperature,
            detour_cache: Mutex::new(None),
        }
    }
}

impl RouterNetwork {
    /// Builds a router network of `kind` over `nodes` cores at `t`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidNodeCount`] for non-square node counts
    /// or a `kind` that is not router-based.
    pub fn new(
        kind: NocKind,
        nodes: usize,
        class: RouterClass,
        t: Temperature,
    ) -> Result<Self, NocError> {
        if kind.is_bus() {
            return Err(NocError::InvalidNodeCount {
                nodes,
                requirement: "RouterNetwork only models router-based NoCs",
            });
        }
        let topo = Topology::square(nodes)?;
        let concentration = match kind {
            NocKind::Mesh => 1,
            NocKind::CMesh | NocKind::FlattenedButterfly => 4,
            _ => unreachable!("bus kinds rejected above"),
        };
        let router_grid = Topology::square(nodes / concentration)?;
        // Physical length of one router-to-router hop in 2 mm core hops.
        let core_hops_per_router_hop = topo.side() / router_grid.side();
        let link = LinkModel::new();
        let link_cycles = link
            .traversal_cycles(core_hops_per_router_hop, t, 4.0)
            .max(1) as u64;
        Ok(RouterNetwork {
            kind,
            class,
            topo,
            router_grid,
            concentration,
            link_cycles_per_router_hop: link_cycles,
            temperature: t,
            detour_cache: Mutex::new(None),
        })
    }

    /// The 64-core mesh of Table 4.
    ///
    /// # Panics
    ///
    /// Never panics for the fixed valid configuration.
    #[must_use]
    pub fn mesh64(class: RouterClass, t: Temperature) -> Self {
        RouterNetwork::new(NocKind::Mesh, 64, class, t).expect("64-core mesh is valid")
    }

    /// The network kind.
    #[must_use]
    pub fn kind(&self) -> NocKind {
        self.kind
    }

    /// The router class.
    #[must_use]
    pub fn class(&self) -> RouterClass {
        self.class
    }

    /// Operating temperature.
    #[must_use]
    pub fn temperature(&self) -> Temperature {
        self.temperature
    }

    /// Router holding the given core.
    #[must_use]
    fn router_of(&self, core: usize) -> usize {
        if self.concentration == 1 {
            return core;
        }
        // 2x2 core blocks map to one router.
        let (x, y) = self.topo.coords(core);
        self.router_grid.node_at(x / 2, y / 2)
    }

    /// Ordered router sequence for a packet (XY for meshes, row-then-column
    /// for the flattened butterfly).
    fn router_route(&self, src_r: usize, dst_r: usize) -> Vec<usize> {
        let (sx, sy) = self.router_grid.coords(src_r);
        let (dx, dy) = self.router_grid.coords(dst_r);
        let mut route = vec![src_r];
        match self.kind {
            NocKind::FlattenedButterfly => {
                if sx != dx {
                    route.push(self.router_grid.node_at(dx, sy));
                }
                if sy != dy {
                    route.push(self.router_grid.node_at(dx, dy));
                }
            }
            _ => {
                // XY: walk X first, then Y, one router per hop.
                let mut x = sx;
                while x != dx {
                    x = if dx > x { x + 1 } else { x - 1 };
                    route.push(self.router_grid.node_at(x, sy));
                }
                let mut y = sy;
                while y != dy {
                    y = if dy > y { y + 1 } else { y - 1 };
                    route.push(self.router_grid.node_at(dx, y));
                }
            }
        }
        route
    }

    /// Resource id of the directed link a→b (unique per ordered router
    /// pair; FB links are direct express channels).
    fn link_id(&self, a: usize, b: usize) -> usize {
        let r = self.router_grid.nodes();
        a * r + b
    }

    /// Link traversal cycles between two (possibly non-adjacent, for FB)
    /// routers.
    fn link_cycles(&self, a: usize, b: usize) -> u64 {
        let hops = self.router_grid.manhattan_hops(a, b) as u64;
        hops * self.link_cycles_per_router_hop
    }

    /// Expands an ordered router sequence into contention legs
    /// (injection port + one leg per inter-router link).
    fn legs_for_route(&self, src_r: usize, route: &[usize]) -> Vec<PacketLeg> {
        let rc = self.class.cycles();
        let occ = self.class.occupancy();
        let inj_base = self.router_grid.nodes() * self.router_grid.nodes();
        let mut legs = Vec::with_capacity(route.len());
        legs.push(PacketLeg::on(inj_base + src_r, occ, rc));
        for pair in route.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            legs.push(PacketLeg::on(
                self.link_id(a, b),
                occ.max(self.link_cycles(a, b)),
                rc + self.link_cycles(a, b),
            ));
        }
        legs
    }

    /// The memoized deadlock-validated detour router for `dead`
    /// (resource indices), rebuilding only when the dead set changes.
    fn detour_router_for(&self, dead: &[usize]) -> DetourRouter {
        let mut cache = self.detour_cache.lock().expect("detour cache lock");
        if let Some((cached_dead, router)) = cache.as_ref() {
            if cached_dead == dead {
                return router.clone();
            }
        }
        let r = self.router_grid.nodes();
        let dead_channels: Vec<(usize, usize)> = dead
            .iter()
            .filter(|&&d| d < r * r)
            .map(|&d| (d / r, d % r))
            .collect();
        let router = DetourRouter::new(&self.router_grid, &dead_channels);
        *cache = Some((dead.to_vec(), router.clone()));
        router
    }

    /// Fault-aware FB routing: row-then-column, falling back to
    /// column-then-row when a dead express channel blocks the default.
    /// FB routes hold at most two channels and the two orders use
    /// disjoint channel sets per pair, so no CDG-relevant mixing arises
    /// on the shared links the way it does for hop-by-hop meshes.
    fn fb_route_avoiding(&self, src_r: usize, dst_r: usize, dead: &[usize]) -> Option<Vec<usize>> {
        let (sx, sy) = self.router_grid.coords(src_r);
        let (dx, dy) = self.router_grid.coords(dst_r);
        let row_first: Vec<usize> = {
            let mut route = vec![src_r];
            if sx != dx {
                route.push(self.router_grid.node_at(dx, sy));
            }
            if sy != dy {
                route.push(self.router_grid.node_at(dx, dy));
            }
            route
        };
        let col_first: Vec<usize> = {
            let mut route = vec![src_r];
            if sy != dy {
                route.push(self.router_grid.node_at(sx, dy));
            }
            if sx != dx {
                route.push(self.router_grid.node_at(dx, dy));
            }
            route
        };
        let clean = |route: &[usize]| {
            route
                .windows(2)
                .all(|w| !dead.contains(&self.link_id(w[0], w[1])))
        };
        if clean(&row_first) {
            Some(row_first)
        } else if clean(&col_first) {
            Some(col_first)
        } else {
            None
        }
    }
}

impl Network for RouterNetwork {
    fn name(&self) -> String {
        let class = match self.class {
            RouterClass::OneCycle => "1-cycle",
            RouterClass::ThreeCycle => "3-cycle",
        };
        format!("{} ({class}) @ {}", self.kind, self.temperature)
    }

    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn resource_count(&self) -> usize {
        let r = self.router_grid.nodes();
        // Directed router-pair links plus per-router injection ports.
        r * r + r
    }

    fn path(&self, src: usize, dst: usize, _tag: u64) -> Vec<PacketLeg> {
        let src_r = self.router_of(src);
        let dst_r = self.router_of(dst);
        // Injection port of the source router (shared by concentrated
        // cores) plus the source router pipeline, then one leg per link.
        let route = self.router_route(src_r, dst_r);
        self.legs_for_route(src_r, &route)
    }

    fn path_avoiding(
        &self,
        src: usize,
        dst: usize,
        tag: u64,
        dead: &[usize],
    ) -> Option<Vec<PacketLeg>> {
        if dead.is_empty() {
            return Some(self.path(src, dst, tag));
        }
        let src_r = self.router_of(src);
        let dst_r = self.router_of(dst);
        let inj_base = self.router_grid.nodes() * self.router_grid.nodes();
        // A dead injection port blocks the source router's cores outright.
        if dead.contains(&(inj_base + src_r)) {
            return None;
        }
        let route = match self.kind {
            NocKind::FlattenedButterfly => self.fb_route_avoiding(src_r, dst_r, dead)?,
            _ => self.detour_router_for(dead).route(src_r, dst_r)?,
        };
        Some(self.legs_for_route(src_r, &route))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t300() -> Temperature {
        Temperature::ambient()
    }
    fn t77() -> Temperature {
        Temperature::liquid_nitrogen()
    }

    #[test]
    fn mesh_zero_load_latency_matches_hop_count() {
        let mesh = RouterNetwork::mesh64(RouterClass::OneCycle, t300());
        // Corner to corner: 14 router hops, 1-cycle routers + 1-cycle links:
        // injection router (1) + 14 × (1 + 1) = 29.
        assert_eq!(mesh.zero_load_latency(0, 63), 29);
    }

    #[test]
    fn cmesh_has_fewer_hops() {
        let mesh = RouterNetwork::mesh64(RouterClass::OneCycle, t300());
        let cmesh = RouterNetwork::new(NocKind::CMesh, 64, RouterClass::OneCycle, t300()).unwrap();
        assert!(cmesh.average_zero_load_latency() < mesh.average_zero_load_latency());
    }

    #[test]
    fn fb_at_most_two_inter_router_hops() {
        let fb = RouterNetwork::new(
            NocKind::FlattenedButterfly,
            64,
            RouterClass::OneCycle,
            t300(),
        )
        .unwrap();
        for src in 0..64 {
            for dst in 0..64 {
                let legs = fb.path(src, dst, 0);
                // injection + ≤2 link legs
                assert!(legs.len() <= 3, "{src}->{dst}: {} legs", legs.len());
            }
        }
    }

    #[test]
    fn three_cycle_router_is_slower() {
        let one = RouterNetwork::mesh64(RouterClass::OneCycle, t300());
        let three = RouterNetwork::mesh64(RouterClass::ThreeCycle, t300());
        assert!(three.average_zero_load_latency() > one.average_zero_load_latency());
    }

    #[test]
    fn mesh_latency_in_cycles_barely_changes_at_77k() {
        // Section 5.1 Guideline #1: short mesh links already take one cycle
        // at 300 K, so cooling does not reduce the cycle count.
        let m300 = RouterNetwork::mesh64(RouterClass::OneCycle, t300());
        let m77 = RouterNetwork::mesh64(RouterClass::OneCycle, t77());
        assert_eq!(
            m300.average_zero_load_latency(),
            m77.average_zero_load_latency()
        );
    }

    #[test]
    fn fb_long_links_speed_up_at_77k() {
        // FB's express links take 1–2 cycles at 300 K and 1 at 77 K.
        let f300 = RouterNetwork::new(
            NocKind::FlattenedButterfly,
            64,
            RouterClass::OneCycle,
            t300(),
        )
        .unwrap();
        let f77 = RouterNetwork::new(
            NocKind::FlattenedButterfly,
            64,
            RouterClass::OneCycle,
            t77(),
        )
        .unwrap();
        assert!(f77.average_zero_load_latency() <= f300.average_zero_load_latency());
    }

    #[test]
    fn rejects_bus_kinds_and_bad_counts() {
        assert!(RouterNetwork::new(NocKind::CryoBus, 64, RouterClass::OneCycle, t300()).is_err());
        assert!(RouterNetwork::new(NocKind::Mesh, 63, RouterClass::OneCycle, t300()).is_err());
    }

    #[test]
    fn concentration_maps_2x2_blocks() {
        let cmesh = RouterNetwork::new(NocKind::CMesh, 64, RouterClass::OneCycle, t300()).unwrap();
        // Cores 0, 1, 8, 9 share router 0 (top-left 2x2 block).
        assert_eq!(cmesh.router_of(0), 0);
        assert_eq!(cmesh.router_of(1), 0);
        assert_eq!(cmesh.router_of(8), 0);
        assert_eq!(cmesh.router_of(9), 0);
        assert_ne!(cmesh.router_of(2), 0);
    }

    #[test]
    fn mesh_detours_around_dead_link() {
        use crate::sim::Network;
        let mesh = RouterNetwork::mesh64(RouterClass::OneCycle, t300());
        // Kill the directed link 0→1 (first XY hop of 0→9). The
        // destination differs in both dimensions so a YX detour exists.
        let dead = vec![mesh.link_id(0, 1)];
        let legs = mesh
            .path_avoiding(0, 9, 0, &dead)
            .expect("a detour must exist");
        assert!(
            legs.iter().all(|l| l.resource != Some(dead[0])),
            "detour still uses the dead link"
        );
        // Injection leg plus at least the YX-shaped alternative hops.
        assert!(legs.len() >= 2);
    }

    #[test]
    fn mesh_dead_injection_port_blocks_source() {
        use crate::sim::Network;
        let mesh = RouterNetwork::mesh64(RouterClass::OneCycle, t300());
        let inj_base = 64 * 64;
        assert!(mesh.path_avoiding(5, 9, 0, &[inj_base + 5]).is_none());
        // Other sources are unaffected.
        assert!(mesh.path_avoiding(6, 9, 0, &[inj_base + 5]).is_some());
    }

    #[test]
    fn fb_detours_via_other_dimension_order() {
        use crate::sim::Network;
        let fb = RouterNetwork::new(
            NocKind::FlattenedButterfly,
            64,
            RouterClass::OneCycle,
            t300(),
        )
        .unwrap();
        // Kill the first express channel of the default row-first route.
        let legs = fb.path(0, 30, 0);
        let first_link = legs[1].resource.unwrap();
        let detour = fb
            .path_avoiding(0, 30, 0, &[first_link])
            .expect("column-first detour must exist");
        assert!(detour.iter().all(|l| l.resource != Some(first_link)));
    }

    #[test]
    fn route_is_contiguous_for_mesh() {
        let mesh = RouterNetwork::mesh64(RouterClass::OneCycle, t300());
        let route = mesh.router_route(0, 63);
        for pair in route.windows(2) {
            assert_eq!(mesh.router_grid.manhattan_hops(pair[0], pair[1]), 1);
        }
        assert_eq!(route.len(), 15); // 14 hops + source
    }
}
