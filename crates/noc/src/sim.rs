//! The contention simulation engine.
//!
//! Packets are expanded into **legs** over shared **resources** (mesh
//! links, bus data wires). Each resource serves one packet at a time;
//! packets reserve the resources along their path in injection order.
//! For a leg the packet first waits for the resource to free, holds it for
//! `occupancy_cycles` (serialization), and arrives `traversal_cycles`
//! later. This reservation model reproduces zero-load latencies exactly
//! and produces the classic load–latency hockey stick as offered load
//! approaches a resource's service capacity, which is the behaviour the
//! paper's BookSim analyses (Fig. 18/21/25/26) rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::NocError;
use crate::topology::Topology;
use crate::traffic::TrafficPattern;

/// One leg of a packet's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketLeg {
    /// Index of the shared resource this leg occupies, or `None` for a
    /// pure-latency leg (e.g. dedicated request/grant control wires).
    pub resource: Option<usize>,
    /// Cycles the resource stays busy serving this packet.
    pub occupancy_cycles: u64,
    /// Cycles until the packet reaches the end of this leg.
    pub traversal_cycles: u64,
}

impl PacketLeg {
    /// A pure-latency leg without contention.
    #[must_use]
    pub fn latency(cycles: u64) -> Self {
        PacketLeg {
            resource: None,
            occupancy_cycles: 0,
            traversal_cycles: cycles,
        }
    }

    /// A leg that holds resource `r` for `occupancy` cycles and takes
    /// `traversal` cycles to cross.
    #[must_use]
    pub fn on(r: usize, occupancy: u64, traversal: u64) -> Self {
        PacketLeg {
            resource: Some(r),
            occupancy_cycles: occupancy,
            traversal_cycles: traversal,
        }
    }
}

/// A simulatable network: expands (src, dst) into contention legs.
pub trait Network {
    /// Display name (used by benches and reports).
    fn name(&self) -> String;

    /// Topology (node count and grid helpers).
    fn topology(&self) -> &Topology;

    /// Number of distinct shared resources.
    fn resource_count(&self) -> usize;

    /// The legs a packet from `src` to `dst` traverses. `tag` is a
    /// per-packet value networks may use for address interleaving.
    fn path(&self, src: usize, dst: usize, tag: u64) -> Vec<PacketLeg>;

    /// Zero-load (uncontended) latency from `src` to `dst`, cycles.
    fn zero_load_latency(&self, src: usize, dst: usize) -> u64 {
        self.path(src, dst, 0)
            .iter()
            .map(|l| l.traversal_cycles)
            .sum()
    }

    /// Average zero-load latency over all (src ≠ dst) pairs, cycles.
    fn average_zero_load_latency(&self) -> f64 {
        let n = self.topology().nodes();
        let mut total = 0u64;
        let mut count = 0u64;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    total += self.zero_load_latency(s, d);
                    count += 1;
                }
            }
        }
        total as f64 / count as f64
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Simulated cycles.
    pub cycles: u64,
    /// Warm-up cycles excluded from statistics.
    pub warmup: u64,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
    /// Latency cap (× zero-load) beyond which the run counts as saturated.
    pub saturation_factor: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cycles: 30_000,
            warmup: 5_000,
            seed: 0xC0FFEE,
            saturation_factor: 12.0,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Offered per-node injection rate (packets/node/cycle).
    pub offered_rate: f64,
    /// Average packet latency, cycles.
    pub avg_latency: f64,
    /// Number of measured packets.
    pub packets: u64,
    /// Whether the network saturated at this load.
    pub saturated: bool,
}

/// The reservation-based contention simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with `config`.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// Runs `network` under `pattern` at per-node injection `rate`
    /// (packets/node/cycle).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidInjectionRate`] if `rate` is not in
    /// `[0, 1]`, or a pattern validation error.
    pub fn run(
        &self,
        network: &dyn Network,
        pattern: TrafficPattern,
        rate: f64,
    ) -> Result<SimResult, NocError> {
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(NocError::InvalidInjectionRate { rate });
        }
        let topo = *network.topology();
        pattern.validate(&topo)?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = topo.nodes();
        let mut free = vec![0u64; network.resource_count()];

        let mut measured_total = 0u64;
        let mut measured_count = 0u64;
        let mut zero_load_sum = 0u64;

        for cycle in 0..self.config.cycles {
            let p = rate * pattern.burst_scale(cycle);
            for src in 0..n {
                if rng.gen::<f64>() >= p {
                    continue;
                }
                let dst = pattern.destination(src, &topo, &mut rng);
                let tag = rng.gen::<u64>();
                let legs = network.path(src, dst, tag);
                let mut t = cycle;
                let mut zero = 0u64;
                for leg in &legs {
                    if let Some(r) = leg.resource {
                        let start = t.max(free[r]);
                        free[r] = start + leg.occupancy_cycles;
                        t = start;
                    }
                    t += leg.traversal_cycles;
                    zero += leg.traversal_cycles;
                }
                if cycle >= self.config.warmup {
                    measured_total += t - cycle;
                    measured_count += 1;
                    zero_load_sum += zero;
                }
            }
        }

        let avg_latency = if measured_count == 0 {
            0.0
        } else {
            measured_total as f64 / measured_count as f64
        };
        let avg_zero = if measured_count == 0 {
            1.0
        } else {
            zero_load_sum as f64 / measured_count as f64
        };
        // Saturated if latency exploded relative to zero-load, or if any
        // resource backlog extends far past the end of simulated time.
        let backlog = free
            .iter()
            .map(|&f| f.saturating_sub(self.config.cycles))
            .max()
            .unwrap_or(0);
        let saturated = measured_count > 0
            && (avg_latency > self.config.saturation_factor * avg_zero
                || backlog > self.config.cycles / 4);

        Ok(SimResult {
            offered_rate: rate,
            avg_latency,
            packets: measured_count,
            saturated,
        })
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::new(SimConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial 1-resource network for engine tests: every packet takes
    /// the single bus for 2 cycles and arrives 5 cycles later.
    #[derive(Debug)]
    struct ToyBus {
        topo: Topology,
    }

    impl Network for ToyBus {
        fn name(&self) -> String {
            "toy bus".into()
        }
        fn topology(&self) -> &Topology {
            &self.topo
        }
        fn resource_count(&self) -> usize {
            1
        }
        fn path(&self, _src: usize, _dst: usize, _tag: u64) -> Vec<PacketLeg> {
            vec![PacketLeg::latency(3), PacketLeg::on(0, 2, 2)]
        }
    }

    fn toy() -> ToyBus {
        ToyBus {
            topo: Topology::c64(),
        }
    }

    #[test]
    fn zero_load_latency_is_sum_of_traversals() {
        let net = toy();
        assert_eq!(net.zero_load_latency(0, 1), 5);
        assert!((net.average_zero_load_latency() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn low_load_latency_near_zero_load() {
        let sim = Simulator::default();
        let r = sim
            .run(&toy(), TrafficPattern::UniformRandom, 0.0005)
            .unwrap();
        assert!(!r.saturated);
        assert!(r.avg_latency < 7.0, "latency = {}", r.avg_latency);
    }

    #[test]
    fn overload_saturates() {
        // Service = 2 cycles/packet on one bus; 64 nodes at 0.05/node
        // offers 3.2 packets/cycle >> 0.5 capacity.
        let sim = Simulator::default();
        let r = sim
            .run(&toy(), TrafficPattern::UniformRandom, 0.05)
            .unwrap();
        assert!(r.saturated);
        assert!(r.avg_latency > 100.0);
    }

    #[test]
    fn latency_monotone_in_load() {
        let sim = Simulator::default();
        let mut last = 0.0;
        for rate in [0.0005, 0.002, 0.004, 0.006] {
            let r = sim
                .run(&toy(), TrafficPattern::UniformRandom, rate)
                .unwrap();
            assert!(
                r.avg_latency >= last - 0.2,
                "latency should not fall with load: {} then {}",
                last,
                r.avg_latency
            );
            last = r.avg_latency;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = Simulator::default();
        let a = sim
            .run(&toy(), TrafficPattern::UniformRandom, 0.003)
            .unwrap();
        let b = sim
            .run(&toy(), TrafficPattern::UniformRandom, 0.003)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_rates() {
        let sim = Simulator::default();
        assert!(sim
            .run(&toy(), TrafficPattern::UniformRandom, -0.1)
            .is_err());
        assert!(sim.run(&toy(), TrafficPattern::UniformRandom, 1.5).is_err());
        assert!(sim
            .run(&toy(), TrafficPattern::UniformRandom, f64::NAN)
            .is_err());
    }
}
