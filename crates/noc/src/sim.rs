//! The contention simulation engine.
//!
//! Packets are expanded into **legs** over shared **resources** (mesh
//! links, bus data wires). Each resource serves one packet at a time;
//! packets reserve the resources along their path in injection order.
//! For a leg the packet first waits for the resource to free, holds it for
//! `occupancy_cycles` (serialization), and arrives `traversal_cycles`
//! later. This reservation model reproduces zero-load latencies exactly
//! and produces the classic load–latency hockey stick as offered load
//! approaches a resource's service capacity, which is the behaviour the
//! paper's BookSim analyses (Fig. 18/21/25/26) rely on.
//!
//! ## Performance architecture
//!
//! The engine's hot loop is allocation-free in steady state: routes are
//! memoized per `(network, dead-set epoch)` in a flat
//! [`PathTable`](crate::route_cache::PathTable) arena (legal because
//! routing is a pure function of `(src, dst, tag % route_classes, dead)`
//! — see [`Network::route_classes`]), and all mutable run state lives in
//! a reusable [`SimScratch`]. The route cache consumes no randomness, so
//! the RNG draw order — injection gate, destination, tag, flit-loss
//! retries — is exactly that of the retained naive engine in
//! [`reference`], which the equivalence test-suite pins bit-for-bit.

use cryowire_faults::{FaultSchedule, LinkState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{NocError, SimError};
use crate::route_cache::PathTable;
use crate::topology::Topology;
use crate::traffic::TrafficPattern;

/// One leg of a packet's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketLeg {
    /// Index of the shared resource this leg occupies, or `None` for a
    /// pure-latency leg (e.g. dedicated request/grant control wires).
    pub resource: Option<usize>,
    /// Cycles the resource stays busy serving this packet.
    pub occupancy_cycles: u64,
    /// Cycles until the packet reaches the end of this leg.
    pub traversal_cycles: u64,
}

impl PacketLeg {
    /// A pure-latency leg without contention.
    #[must_use]
    pub fn latency(cycles: u64) -> Self {
        PacketLeg {
            resource: None,
            occupancy_cycles: 0,
            traversal_cycles: cycles,
        }
    }

    /// A leg that holds resource `r` for `occupancy` cycles and takes
    /// `traversal` cycles to cross.
    #[must_use]
    pub fn on(r: usize, occupancy: u64, traversal: u64) -> Self {
        PacketLeg {
            resource: Some(r),
            occupancy_cycles: occupancy,
            traversal_cycles: traversal,
        }
    }
}

/// A simulatable network: expands (src, dst) into contention legs.
pub trait Network {
    /// Display name (used by benches and reports).
    fn name(&self) -> String;

    /// Topology (node count and grid helpers).
    fn topology(&self) -> &Topology;

    /// Number of distinct shared resources.
    fn resource_count(&self) -> usize;

    /// The legs a packet from `src` to `dst` traverses. `tag` is a
    /// per-packet value networks may use for address interleaving.
    fn path(&self, src: usize, dst: usize, tag: u64) -> Vec<PacketLeg>;

    /// Like [`Network::path`], but avoiding the `dead` resources.
    /// Returns `None` when the network knows no route around them.
    ///
    /// The default implementation knows no alternatives: it returns the
    /// normal path if it is clean and `None` if it crosses a dead
    /// resource. Networks with routing freedom (mesh detours, bus way
    /// remapping, H-tree re-formation) override this with a genuine
    /// reroute — which must stay deadlock-free (see
    /// [`crate::deadlock::DetourRouter`]).
    fn path_avoiding(
        &self,
        src: usize,
        dst: usize,
        tag: u64,
        dead: &[usize],
    ) -> Option<Vec<PacketLeg>> {
        let legs = self.path(src, dst, tag);
        if legs
            .iter()
            .any(|l| l.resource.is_some_and(|r| dead.contains(&r)))
        {
            None
        } else {
            Some(legs)
        }
    }

    /// Number of distinct route classes under the `dead` resource set —
    /// the memoization contract behind
    /// [`PathTable`](crate::route_cache::PathTable).
    ///
    /// Implementations promise that [`Network::path`] and
    /// [`Network::path_avoiding`] depend on `tag` only through
    /// `tag % route_classes(dead)`, and that class `c` is reproduced by
    /// the representative tag `c as u64`. The default of 1 declares the
    /// network tag-independent (routes ignore the tag entirely), which
    /// holds for the router networks and segmented buses; interleaved
    /// buses override this with their live way count.
    fn route_classes(&self, dead: &[usize]) -> usize {
        let _ = dead;
        1
    }

    /// Zero-load (uncontended) latency from `src` to `dst`, cycles.
    fn zero_load_latency(&self, src: usize, dst: usize) -> u64 {
        self.path(src, dst, 0)
            .iter()
            .map(|l| l.traversal_cycles)
            .sum()
    }

    /// Average zero-load latency over all (src ≠ dst) pairs, cycles.
    fn average_zero_load_latency(&self) -> f64 {
        let n = self.topology().nodes();
        let mut total = 0u64;
        let mut count = 0u64;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    total += self.zero_load_latency(s, d);
                    count += 1;
                }
            }
        }
        total as f64 / count as f64
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Simulated cycles.
    pub cycles: u64,
    /// Warm-up cycles excluded from statistics.
    pub warmup: u64,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
    /// Latency cap (× zero-load) beyond which the run counts as saturated.
    pub saturation_factor: f64,
    /// Progress watchdog for fault-injected runs: once this many packets
    /// have been blocked (no route around dead resources), the run stops
    /// with [`SimError::Stalled`] instead of silently going nowhere.
    pub watchdog_blocked_packets: u64,
}

impl SimConfig {
    /// Rejects windows that can never measure a packet (`cycles == 0`,
    /// or a warm-up period swallowing the whole run) — configurations
    /// that previously produced silent `avg_latency = 0`/0-packet
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidSimWindow`] for a degenerate window.
    pub fn validate(&self) -> Result<(), NocError> {
        if self.cycles == 0 || self.warmup >= self.cycles {
            return Err(NocError::InvalidSimWindow {
                cycles: self.cycles,
                warmup: self.warmup,
            });
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cycles: 30_000,
            warmup: 5_000,
            seed: 0xC0FFEE,
            saturation_factor: 12.0,
            watchdog_blocked_packets: 1_000,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Offered per-node injection rate (packets/node/cycle).
    pub offered_rate: f64,
    /// Average packet latency, cycles.
    pub avg_latency: f64,
    /// Number of measured packets.
    pub packets: u64,
    /// Whether the network saturated at this load.
    pub saturated: bool,
    /// Packets dropped after exhausting their flit-loss retransmit
    /// budget (always 0 without fault injection).
    pub dropped: u64,
    /// Packets that never entered the network because no route avoided
    /// the dead resources (always 0 without fault injection).
    pub unrouted: u64,
}

/// Reusable per-run mutable state: the resource `free` vector plus one
/// memoized [`PathTable`] per dead-set epoch seen so far.
///
/// A scratch is bound to one network (by address identity); passing a
/// different network rebuilds everything, so reuse only pays off when
/// the same network object is swept repeatedly — exactly the
/// load–latency sweep shape, where
/// [`LoadLatencySweep`](crate::load_latency::LoadLatencySweep) shares
/// one scratch across all rate points. After the first run warms the
/// tables, subsequent fault-free runs perform **zero heap allocations**
/// (pinned by the counting-allocator test in `tests/zero_alloc.rs`).
#[derive(Debug, Default)]
pub struct SimScratch {
    free: Vec<u64>,
    /// `(dead set, memoized routes)` pairs; epoch 0 is always the empty
    /// dead set. Kept across runs so a sweep rebuilds nothing.
    epochs: Vec<(Vec<usize>, PathTable)>,
    /// Address identity of the network the epochs were built for.
    net_token: usize,
}

impl SimScratch {
    /// An empty scratch; the first run populates it.
    #[must_use]
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Binds the scratch to `network`, discarding memoized routes that
    /// belong to a different network object.
    fn bind(&mut self, network: &dyn Network) {
        let token = std::ptr::from_ref(network).cast::<u8>() as usize;
        if token != self.net_token {
            self.net_token = token;
            self.epochs.clear();
        }
        self.free.resize(network.resource_count(), 0);
        self.free.fill(0);
    }
}

/// Per-rate lane state for the batched lockstep engine: its own RNG
/// (streams diverge across rates as soon as one lane's injection gate
/// passes and another's does not) and its own measurement accumulators.
#[derive(Debug)]
struct RateLane {
    rng: StdRng,
    rate: f64,
    measured_total: u64,
    measured_count: u64,
    zero_load_sum: u64,
}

/// Reusable state for batched rate-grid runs
/// ([`Simulator::run_rates_with_scratch`]): an embedded [`SimScratch`]
/// whose memoized [`PathTable`] serves *every* rate in the batch (one
/// route rebuild per (network, dead-set) for the whole grid), plus a
/// lane-major `free` slab — lane `l` owns
/// `free[l * resources..(l + 1) * resources]` — and the per-lane RNG /
/// accumulator state.
///
/// Grow-only like the other scratches: after the first batch warms the
/// slab and the route table, steady-state batched runs perform zero
/// heap allocations (pinned by `tests/zero_alloc.rs`).
#[derive(Debug, Default)]
pub struct BatchSimScratch {
    base: SimScratch,
    free: Vec<u64>,
    lanes: Vec<RateLane>,
}

impl BatchSimScratch {
    /// An empty scratch; the first batched run populates it.
    #[must_use]
    pub fn new() -> Self {
        BatchSimScratch::default()
    }
}

/// Finds (or builds) the epoch whose dead set equals `dead`, returning
/// its index. Free function so the caller can keep `scratch.free`
/// mutably borrowed.
fn epoch_index(
    epochs: &mut Vec<(Vec<usize>, PathTable)>,
    network: &dyn Network,
    dead: &[usize],
) -> usize {
    if let Some(i) = epochs.iter().position(|(d, _)| d == dead) {
        return i;
    }
    let mut table = PathTable::new();
    table.rebuild(network, dead);
    epochs.push((dead.to_vec(), table));
    epochs.len() - 1
}

/// The reservation-based contention simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with `config`.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// Runs `network` under `pattern` at per-node injection `rate`
    /// (packets/node/cycle).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidInjectionRate`] if `rate` is not in
    /// `[0, 1]`, [`NocError::InvalidSimWindow`] for a degenerate
    /// configuration, or a pattern validation error.
    pub fn run(
        &self,
        network: &dyn Network,
        pattern: TrafficPattern,
        rate: f64,
    ) -> Result<SimResult, NocError> {
        // A fault-free run draws the same RNG stream as before the
        // faulted engine existed: no dead set, no loss draws.
        match self.run_with_faults(network, pattern, rate, &FaultSchedule::default()) {
            Ok(r) => Ok(r),
            Err(SimError::Noc(e)) => Err(e),
            Err(SimError::Stalled { .. }) => {
                unreachable!("the watchdog cannot fire without injected faults")
            }
        }
    }

    /// Runs `network` under `pattern` at `rate` with `faults` injected,
    /// using a fresh [`SimScratch`].
    ///
    /// Dead resources are avoided via [`Network::path_avoiding`]
    /// (deadlock-free detours where the network has routing freedom);
    /// degraded resources serve slower; stalled routers add pipeline
    /// cycles; flit loss retransmits each lossy leg up to its budget and
    /// drops the packet beyond it. Packets with no usable route are
    /// counted in [`SimResult::unrouted`]; once
    /// [`SimConfig::watchdog_blocked_packets`] of them accumulate the
    /// run aborts with [`SimError::Stalled`] naming the dead resources —
    /// a hang can therefore never outlive the watchdog budget.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Noc`] for validation errors and
    /// [`SimError::Stalled`] when the watchdog fires.
    pub fn run_with_faults(
        &self,
        network: &dyn Network,
        pattern: TrafficPattern,
        rate: f64,
        faults: &FaultSchedule,
    ) -> Result<SimResult, SimError> {
        self.run_with_scratch(network, pattern, rate, faults, &mut SimScratch::new())
    }

    /// Like [`Simulator::run_with_faults`], but reusing `scratch` —
    /// memoized route tables and the resource-reservation vector — so
    /// repeated runs over the same network (a load–latency sweep)
    /// allocate nothing in steady state.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run_with_faults`].
    pub fn run_with_scratch(
        &self,
        network: &dyn Network,
        pattern: TrafficPattern,
        rate: f64,
        faults: &FaultSchedule,
        scratch: &mut SimScratch,
    ) -> Result<SimResult, SimError> {
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(NocError::InvalidInjectionRate { rate }.into());
        }
        self.config.validate()?;
        let topo = *network.topology();
        pattern.validate(&topo)?;
        scratch.bind(network);
        if faults.is_empty() {
            Ok(self.run_fault_free(network, pattern, rate, &topo, scratch))
        } else {
            self.run_faulted(network, pattern, rate, faults, &topo, scratch)
        }
    }

    /// Runs a whole rate grid over `network` in lockstep, returning one
    /// [`SimResult`] per rate (same order), each bit-identical to a
    /// scalar [`Simulator::run_with_scratch`] call at that rate.
    ///
    /// The fault-free engine steps every rate lane per (cycle, src)
    /// through one loop: routing is memoized once in the shared
    /// [`PathTable`] for the whole grid, and each lane draws from its
    /// own seeded RNG in exactly the scalar per-rate order (the gate /
    /// destination / tag draws of a lane depend on that lane's gate
    /// outcomes, so streams cannot be shared across rates). A non-empty
    /// fault schedule falls back to scalar runs through the embedded
    /// scratch — fault state transitions are control-flow-heavy enough
    /// that lockstepping them buys nothing.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run_with_scratch`]; the first offending rate
    /// (in grid order) reports the error.
    pub fn run_rates_with_scratch(
        &self,
        network: &dyn Network,
        pattern: TrafficPattern,
        rates: &[f64],
        faults: &FaultSchedule,
        scratch: &mut BatchSimScratch,
    ) -> Result<Vec<SimResult>, SimError> {
        for &rate in rates {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(NocError::InvalidInjectionRate { rate }.into());
            }
        }
        self.config.validate()?;
        let topo = *network.topology();
        pattern.validate(&topo)?;
        if rates.is_empty() {
            return Ok(Vec::new());
        }
        if !faults.is_empty() {
            // Sequential fallback, still sharing the memoized routes.
            let mut out = Vec::with_capacity(rates.len());
            for &rate in rates {
                out.push(self.run_with_scratch(
                    network,
                    pattern,
                    rate,
                    faults,
                    &mut scratch.base,
                )?);
            }
            return Ok(out);
        }

        scratch.base.bind(network);
        let BatchSimScratch { base, free, lanes } = scratch;
        let table_idx = epoch_index(&mut base.epochs, network, &[]);
        let table = &base.epochs[table_idx].1;
        let n = topo.nodes();
        // `chunks_mut` needs a positive chunk size; a resource-less
        // network gets one padding slot per lane (never indexed, and
        // `finish` reads the same zero backlog from it).
        let rc = network.resource_count().max(1);

        lanes.clear();
        for &rate in rates {
            lanes.push(RateLane {
                rng: StdRng::seed_from_u64(self.config.seed),
                rate,
                measured_total: 0,
                measured_count: 0,
                zero_load_sum: 0,
            });
        }
        let want = lanes.len() * rc;
        if free.len() < want {
            free.resize(want, 0);
        }
        free[..want].fill(0);

        for cycle in 0..self.config.cycles {
            let scale = pattern.burst_scale(cycle);
            let measure = cycle >= self.config.warmup;
            for src in 0..n {
                for (lane, free_l) in lanes.iter_mut().zip(free.chunks_mut(rc)) {
                    // One gate draw per (cycle, src) whether or not the
                    // lane can inject — the scalar engine's
                    // stream-preserving contract.
                    let p = lane.rate * scale;
                    if lane.rng.gen::<f64>() >= p {
                        continue;
                    }
                    let dst = pattern.destination(src, &topo, &mut lane.rng);
                    let tag = lane.rng.gen::<u64>();
                    let (legs, zero) = table
                        .lookup(src, dst, tag)
                        .expect("fault-free routes always exist");
                    let mut t = cycle;
                    for leg in legs {
                        if let Some(r) = leg.resource {
                            let start = t.max(free_l[r]);
                            free_l[r] = start + leg.occupancy_cycles;
                            t = start;
                        }
                        t += leg.traversal_cycles;
                    }
                    if measure {
                        lane.measured_total += t - cycle;
                        lane.measured_count += 1;
                        lane.zero_load_sum += zero;
                    }
                }
            }
        }

        Ok(lanes
            .iter()
            .zip(free.chunks(rc))
            .map(|(lane, free_l)| {
                self.finish(
                    lane.rate,
                    lane.measured_total,
                    lane.measured_count,
                    lane.zero_load_sum,
                    0,
                    0,
                    free_l,
                )
            })
            .collect())
    }

    /// The fault-free fast path: no fault lookups anywhere, no loss
    /// draws, routes and zero-load sums straight from the arena.
    fn run_fault_free(
        &self,
        network: &dyn Network,
        pattern: TrafficPattern,
        rate: f64,
        topo: &Topology,
        scratch: &mut SimScratch,
    ) -> SimResult {
        let SimScratch { free, epochs, .. } = scratch;
        let table_idx = epoch_index(epochs, network, &[]);
        let table = &epochs[table_idx].1;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = topo.nodes();

        let mut measured_total = 0u64;
        let mut measured_count = 0u64;
        let mut zero_load_sum = 0u64;

        for cycle in 0..self.config.cycles {
            let p = rate * pattern.burst_scale(cycle);
            if p <= 0.0 {
                // Preserve the RNG stream: every node still consumes its
                // injection-gate draw even in a zero-injection cycle
                // (burst off-phases), it just cannot pass the gate.
                for _ in 0..n {
                    let _ = rng.gen::<f64>();
                }
                continue;
            }
            for src in 0..n {
                if rng.gen::<f64>() >= p {
                    continue;
                }
                let dst = pattern.destination(src, topo, &mut rng);
                let tag = rng.gen::<u64>();
                let (legs, zero) = table
                    .lookup(src, dst, tag)
                    .expect("fault-free routes always exist");
                let mut t = cycle;
                for leg in legs {
                    if let Some(r) = leg.resource {
                        let start = t.max(free[r]);
                        free[r] = start + leg.occupancy_cycles;
                        t = start;
                    }
                    t += leg.traversal_cycles;
                }
                if cycle >= self.config.warmup {
                    measured_total += t - cycle;
                    measured_count += 1;
                    zero_load_sum += zero;
                }
            }
        }
        self.finish(
            rate,
            measured_total,
            measured_count,
            zero_load_sum,
            0,
            0,
            free,
        )
    }

    /// The general engine under an active fault schedule. Route tables
    /// are swapped (and lazily built) only when the dead set actually
    /// changes at a schedule change point.
    #[allow(clippy::too_many_lines)]
    fn run_faulted(
        &self,
        network: &dyn Network,
        pattern: TrafficPattern,
        rate: f64,
        faults: &FaultSchedule,
        topo: &Topology,
        scratch: &mut SimScratch,
    ) -> Result<SimResult, SimError> {
        let SimScratch { free, epochs, .. } = scratch;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = topo.nodes();

        let mut measured_total = 0u64;
        let mut measured_count = 0u64;
        let mut zero_load_sum = 0u64;
        let mut dropped = 0u64;
        let mut unrouted = 0u64;
        let watchdog = self.config.watchdog_blocked_packets.max(1);

        // The active fault set only changes at event boundaries, so the
        // dead set (and with it the route-table epoch) is re-derived
        // there instead of every cycle.
        let change_points = faults.change_points();
        let mut next_change = 0usize;
        let mut cur = epoch_index(epochs, network, &[]);

        for cycle in 0..self.config.cycles {
            let mut at_change_point = false;
            while change_points.get(next_change).is_some_and(|&c| c <= cycle) {
                next_change += 1;
                at_change_point = true;
            }
            if at_change_point {
                let dead_now = faults.dead_resources_at(cycle);
                if dead_now != epochs[cur].0 {
                    cur = epoch_index(epochs, network, &dead_now);
                }
            }
            let table = &epochs[cur].1;
            let loss = faults.flit_loss_at(cycle);
            let p = rate * pattern.burst_scale(cycle);
            if p <= 0.0 {
                // Same stream-preserving gate draws as the fast path.
                for _ in 0..n {
                    let _ = rng.gen::<f64>();
                }
                continue;
            }
            for src in 0..n {
                if rng.gen::<f64>() >= p {
                    continue;
                }
                let dst = pattern.destination(src, topo, &mut rng);
                let tag = rng.gen::<u64>();
                let Some((legs, zero)) = table.lookup(src, dst, tag) else {
                    unrouted += 1;
                    if unrouted >= watchdog {
                        return Err(SimError::Stalled {
                            cycle,
                            blocked_resources: epochs[cur].0.clone(),
                        });
                    }
                    continue;
                };
                let mut t = cycle;
                let mut lost = false;
                for leg in legs {
                    let mut occupancy = leg.occupancy_cycles;
                    let mut traversal = leg.traversal_cycles;
                    if let Some(r) = leg.resource {
                        match faults.link_state(r, cycle) {
                            LinkState::Degraded(factor) => {
                                occupancy = scale_cycles(occupancy, factor);
                                traversal = scale_cycles(traversal, factor);
                            }
                            LinkState::Healthy | LinkState::Dead => {}
                        }
                        traversal += faults.stall_cycles(r, cycle);
                        if let Some(l) = loss {
                            // Each loss repays the leg (occupancy and
                            // traversal); past the budget the packet is
                            // dropped mid-flight, and the attempt that
                            // lost it never completes its reservation —
                            // only the repaid attempts charge the
                            // resource.
                            let mut retries = 0u32;
                            while rng.gen::<f64>() < l.probability {
                                if retries == l.max_retransmits {
                                    lost = true;
                                    break;
                                }
                                retries += 1;
                            }
                            if lost {
                                occupancy *= u64::from(retries);
                                traversal *= u64::from(retries);
                            } else {
                                occupancy += occupancy * u64::from(retries);
                                traversal += traversal * u64::from(retries);
                            }
                        }
                        let start = t.max(free[r]);
                        free[r] = start + occupancy;
                        t = start;
                    }
                    t += traversal;
                    if lost {
                        dropped += 1;
                        break;
                    }
                }
                if !lost && cycle >= self.config.warmup {
                    measured_total += t - cycle;
                    measured_count += 1;
                    zero_load_sum += zero;
                }
            }
        }
        Ok(self.finish(
            rate,
            measured_total,
            measured_count,
            zero_load_sum,
            dropped,
            unrouted,
            free,
        ))
    }

    /// Shared result assembly (statistics + saturation verdict).
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        rate: f64,
        measured_total: u64,
        measured_count: u64,
        zero_load_sum: u64,
        dropped: u64,
        unrouted: u64,
        free: &[u64],
    ) -> SimResult {
        let avg_latency = if measured_count == 0 {
            0.0
        } else {
            measured_total as f64 / measured_count as f64
        };
        let avg_zero = if measured_count == 0 {
            1.0
        } else {
            zero_load_sum as f64 / measured_count as f64
        };
        // Saturated if latency exploded relative to zero-load, or if any
        // resource backlog extends far past the end of simulated time.
        let backlog = free
            .iter()
            .map(|&f| f.saturating_sub(self.config.cycles))
            .max()
            .unwrap_or(0);
        let saturated = measured_count > 0
            && (avg_latency > self.config.saturation_factor * avg_zero
                || backlog > self.config.cycles / 4);
        SimResult {
            offered_rate: rate,
            avg_latency,
            packets: measured_count,
            saturated,
            dropped,
            unrouted,
        }
    }
}

/// Scales a cycle count by a degradation factor, rounding up so any
/// degradation costs at least one extra cycle on nonzero legs.
fn scale_cycles(cycles: u64, factor: f64) -> u64 {
    if cycles == 0 {
        return 0;
    }
    (cycles as f64 * factor).ceil() as u64
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::new(SimConfig::default())
    }
}

#[cfg(any(test, feature = "reference-sim"))]
pub mod reference {
    //! The naive per-packet-allocation engine, retained verbatim as the
    //! correctness oracle for the memoized hot loop (and as the baseline
    //! the `noc_hot_loop` bench and `BENCH_noc.json` speedups are
    //! measured against). Behind `feature = "reference-sim"` outside
    //! tests so release binaries of downstream crates opt in explicitly.
    //!
    //! The only differences from the historical code are the two audited
    //! bugfixes, applied to **both** engines so they stay bit-identical:
    //! degenerate-window validation ([`SimConfig::validate`]) and the
    //! lost-leg retransmit accounting (a dropped packet's fatal attempt
    //! no longer charges the resource).

    use super::{
        scale_cycles, FaultSchedule, LinkState, Network, NocError, Rng, SeedableRng, SimConfig,
        SimError, SimResult, StdRng, TrafficPattern,
    };

    /// The reference simulator: same configuration surface as
    /// [`Simulator`](super::Simulator), no memoization, no scratch
    /// reuse.
    #[derive(Debug, Clone)]
    pub struct ReferenceSimulator {
        config: SimConfig,
    }

    impl ReferenceSimulator {
        /// Creates a reference simulator with `config`.
        #[must_use]
        pub fn new(config: SimConfig) -> Self {
            ReferenceSimulator { config }
        }

        /// Fault-free reference run.
        ///
        /// # Errors
        ///
        /// As for [`Simulator::run`](super::Simulator::run).
        pub fn run(
            &self,
            network: &dyn Network,
            pattern: TrafficPattern,
            rate: f64,
        ) -> Result<SimResult, NocError> {
            match self.run_with_faults(network, pattern, rate, &FaultSchedule::default()) {
                Ok(r) => Ok(r),
                Err(SimError::Noc(e)) => Err(e),
                Err(SimError::Stalled { .. }) => {
                    unreachable!("the watchdog cannot fire without injected faults")
                }
            }
        }

        /// Fault-injected reference run.
        ///
        /// # Errors
        ///
        /// As for
        /// [`Simulator::run_with_faults`](super::Simulator::run_with_faults).
        #[allow(clippy::too_many_lines)]
        pub fn run_with_faults(
            &self,
            network: &dyn Network,
            pattern: TrafficPattern,
            rate: f64,
            faults: &FaultSchedule,
        ) -> Result<SimResult, SimError> {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(NocError::InvalidInjectionRate { rate }.into());
            }
            self.config.validate()?;
            let topo = *network.topology();
            pattern.validate(&topo)?;
            let mut rng = StdRng::seed_from_u64(self.config.seed);
            let n = topo.nodes();
            let mut free = vec![0u64; network.resource_count()];

            let mut measured_total = 0u64;
            let mut measured_count = 0u64;
            let mut zero_load_sum = 0u64;
            let mut dropped = 0u64;
            let mut unrouted = 0u64;
            let watchdog = self.config.watchdog_blocked_packets.max(1);

            let change_points = faults.change_points();
            let mut next_change = 0usize;
            let mut dead: Vec<usize> = Vec::new();

            for cycle in 0..self.config.cycles {
                while change_points.get(next_change).is_some_and(|&c| c <= cycle) {
                    next_change += 1;
                    dead = faults.dead_resources_at(cycle);
                }
                let loss = faults.flit_loss_at(cycle);
                let p = rate * pattern.burst_scale(cycle);
                for src in 0..n {
                    if rng.gen::<f64>() >= p {
                        continue;
                    }
                    let dst = pattern.destination(src, &topo, &mut rng);
                    let tag = rng.gen::<u64>();
                    let legs = if dead.is_empty() {
                        network.path(src, dst, tag)
                    } else {
                        match network.path_avoiding(src, dst, tag, &dead) {
                            Some(legs) => legs,
                            None => {
                                unrouted += 1;
                                if unrouted >= watchdog {
                                    return Err(SimError::Stalled {
                                        cycle,
                                        blocked_resources: dead,
                                    });
                                }
                                continue;
                            }
                        }
                    };
                    let mut t = cycle;
                    let mut zero = 0u64;
                    let mut lost = false;
                    for leg in &legs {
                        let mut occupancy = leg.occupancy_cycles;
                        let mut traversal = leg.traversal_cycles;
                        if let Some(r) = leg.resource {
                            match faults.link_state(r, cycle) {
                                LinkState::Degraded(factor) => {
                                    occupancy = scale_cycles(occupancy, factor);
                                    traversal = scale_cycles(traversal, factor);
                                }
                                LinkState::Healthy | LinkState::Dead => {}
                            }
                            traversal += faults.stall_cycles(r, cycle);
                            if let Some(l) = loss {
                                // Repay-the-leg semantics: the attempt
                                // that exceeded the budget is dropped
                                // mid-flight and charges nothing.
                                let mut retries = 0u32;
                                while rng.gen::<f64>() < l.probability {
                                    if retries == l.max_retransmits {
                                        lost = true;
                                        break;
                                    }
                                    retries += 1;
                                }
                                if lost {
                                    occupancy *= u64::from(retries);
                                    traversal *= u64::from(retries);
                                } else {
                                    occupancy += occupancy * u64::from(retries);
                                    traversal += traversal * u64::from(retries);
                                }
                            }
                            let start = t.max(free[r]);
                            free[r] = start + occupancy;
                            t = start;
                        }
                        t += traversal;
                        zero += leg.traversal_cycles;
                        if lost {
                            dropped += 1;
                            break;
                        }
                    }
                    if !lost && cycle >= self.config.warmup {
                        measured_total += t - cycle;
                        measured_count += 1;
                        zero_load_sum += zero;
                    }
                }
            }

            let avg_latency = if measured_count == 0 {
                0.0
            } else {
                measured_total as f64 / measured_count as f64
            };
            let avg_zero = if measured_count == 0 {
                1.0
            } else {
                zero_load_sum as f64 / measured_count as f64
            };
            let backlog = free
                .iter()
                .map(|&f| f.saturating_sub(self.config.cycles))
                .max()
                .unwrap_or(0);
            let saturated = measured_count > 0
                && (avg_latency > self.config.saturation_factor * avg_zero
                    || backlog > self.config.cycles / 4);

            Ok(SimResult {
                offered_rate: rate,
                avg_latency,
                packets: measured_count,
                saturated,
                dropped,
                unrouted,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial 1-resource network for engine tests: every packet takes
    /// the single bus for 2 cycles and arrives 5 cycles later.
    #[derive(Debug)]
    struct ToyBus {
        topo: Topology,
    }

    impl Network for ToyBus {
        fn name(&self) -> String {
            "toy bus".into()
        }
        fn topology(&self) -> &Topology {
            &self.topo
        }
        fn resource_count(&self) -> usize {
            1
        }
        fn path(&self, _src: usize, _dst: usize, _tag: u64) -> Vec<PacketLeg> {
            vec![PacketLeg::latency(3), PacketLeg::on(0, 2, 2)]
        }
    }

    fn toy() -> ToyBus {
        ToyBus {
            topo: Topology::c64(),
        }
    }

    #[test]
    fn zero_load_latency_is_sum_of_traversals() {
        let net = toy();
        assert_eq!(net.zero_load_latency(0, 1), 5);
        assert!((net.average_zero_load_latency() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn low_load_latency_near_zero_load() {
        let sim = Simulator::default();
        let r = sim
            .run(&toy(), TrafficPattern::UniformRandom, 0.0005)
            .unwrap();
        assert!(!r.saturated);
        assert!(r.avg_latency < 7.0, "latency = {}", r.avg_latency);
    }

    #[test]
    fn overload_saturates() {
        // Service = 2 cycles/packet on one bus; 64 nodes at 0.05/node
        // offers 3.2 packets/cycle >> 0.5 capacity.
        let sim = Simulator::default();
        let r = sim
            .run(&toy(), TrafficPattern::UniformRandom, 0.05)
            .unwrap();
        assert!(r.saturated);
        assert!(r.avg_latency > 100.0);
    }

    #[test]
    fn latency_monotone_in_load() {
        let sim = Simulator::default();
        let mut last = 0.0;
        for rate in [0.0005, 0.002, 0.004, 0.006] {
            let r = sim
                .run(&toy(), TrafficPattern::UniformRandom, rate)
                .unwrap();
            assert!(
                r.avg_latency >= last - 0.2,
                "latency should not fall with load: {} then {}",
                last,
                r.avg_latency
            );
            last = r.avg_latency;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = Simulator::default();
        let a = sim
            .run(&toy(), TrafficPattern::UniformRandom, 0.003)
            .unwrap();
        let b = sim
            .run(&toy(), TrafficPattern::UniformRandom, 0.003)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // Three consecutive rates through one warm scratch must equal
        // three fresh-scratch runs exactly.
        let sim = Simulator::default();
        let net = toy();
        let empty = FaultSchedule::default();
        let mut scratch = SimScratch::new();
        for rate in [0.001, 0.003, 0.006] {
            let warm = sim
                .run_with_scratch(
                    &net,
                    TrafficPattern::UniformRandom,
                    rate,
                    &empty,
                    &mut scratch,
                )
                .unwrap();
            let fresh = sim.run(&net, TrafficPattern::UniformRandom, rate).unwrap();
            assert_eq!(warm, fresh, "rate {rate}");
        }
    }

    #[test]
    fn matches_reference_engine() {
        let sim = Simulator::default();
        let refsim = reference::ReferenceSimulator::new(SimConfig::default());
        for rate in [0.001, 0.004, 0.02] {
            let a = sim
                .run(&toy(), TrafficPattern::UniformRandom, rate)
                .unwrap();
            let b = refsim
                .run(&toy(), TrafficPattern::UniformRandom, rate)
                .unwrap();
            assert_eq!(a, b, "rate {rate}");
        }
    }

    #[test]
    fn empty_schedule_matches_fault_free_run() {
        let sim = Simulator::default();
        let plain = sim
            .run(&toy(), TrafficPattern::UniformRandom, 0.003)
            .unwrap();
        let faulted = sim
            .run_with_faults(
                &toy(),
                TrafficPattern::UniformRandom,
                0.003,
                &cryowire_faults::FaultSchedule::default(),
            )
            .unwrap();
        assert_eq!(plain, faulted);
        assert_eq!(faulted.dropped, 0);
        assert_eq!(faulted.unrouted, 0);
    }

    #[test]
    fn dead_only_resource_trips_watchdog() {
        use cryowire_faults::{FaultEvent, FaultKind, FaultSchedule};
        // The toy bus has a single resource and no routing freedom, so
        // killing it must end in Stalled, never a hang.
        let sim = Simulator::default();
        let faults = FaultSchedule::from_events(
            vec![FaultEvent::permanent(
                0,
                FaultKind::LinkDead { resource: 0 },
            )],
            30_000,
        );
        let err = sim
            .run_with_faults(&toy(), TrafficPattern::UniformRandom, 0.01, &faults)
            .unwrap_err();
        match err {
            crate::error::SimError::Stalled {
                blocked_resources, ..
            } => assert_eq!(blocked_resources, vec![0]),
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn degraded_resource_raises_latency() {
        use cryowire_faults::{FaultEvent, FaultKind, FaultSchedule};
        let sim = Simulator::default();
        let healthy = sim
            .run(&toy(), TrafficPattern::UniformRandom, 0.002)
            .unwrap();
        let faults = FaultSchedule::from_events(
            vec![FaultEvent::permanent(
                0,
                FaultKind::LinkDegraded {
                    resource: 0,
                    factor: 3.0,
                },
            )],
            30_000,
        );
        let degraded = sim
            .run_with_faults(&toy(), TrafficPattern::UniformRandom, 0.002, &faults)
            .unwrap();
        assert!(
            degraded.avg_latency > healthy.avg_latency,
            "degraded {} <= healthy {}",
            degraded.avg_latency,
            healthy.avg_latency
        );
    }

    #[test]
    fn flit_loss_drops_bounded_packets() {
        use cryowire_faults::{FaultEvent, FaultKind, FaultSchedule};
        let sim = Simulator::default();
        let faults = FaultSchedule::from_events(
            vec![FaultEvent::permanent(
                0,
                FaultKind::FlitLoss {
                    probability: 0.5,
                    max_retransmits: 1,
                },
            )],
            30_000,
        );
        let r = sim
            .run_with_faults(&toy(), TrafficPattern::UniformRandom, 0.002, &faults)
            .unwrap();
        assert!(r.dropped > 0, "p=0.5 with 1 retransmit must drop packets");
        assert!(r.packets > 0, "most packets still get through");
    }

    #[test]
    fn lost_packet_repays_only_completed_attempts() {
        use cryowire_faults::{FaultEvent, FaultKind, FaultSchedule};
        // probability = 1 with a zero retransmit budget: every packet is
        // lost on its first (and only) attempt, which is dropped
        // mid-flight and must charge the resource nothing. Before the
        // accounting fix the dropped packets still held the bus, so this
        // overload rate spuriously saturated an empty network.
        let sim = Simulator::default();
        let faults = FaultSchedule::from_events(
            vec![FaultEvent::permanent(
                0,
                FaultKind::FlitLoss {
                    probability: 1.0,
                    max_retransmits: 0,
                },
            )],
            30_000,
        );
        let r = sim
            .run_with_faults(&toy(), TrafficPattern::UniformRandom, 0.05, &faults)
            .unwrap();
        assert!(r.dropped > 0, "every injected packet is lost");
        assert_eq!(r.packets, 0, "nothing ever arrives");
        assert!(
            !r.saturated,
            "dropped packets must not charge occupancy (backlog would saturate)"
        );
    }

    #[test]
    fn faulted_run_is_deterministic() {
        use cryowire_faults::FaultPlan;
        let sim = Simulator::default();
        let faults = FaultPlan::new(7)
            .flit_loss(0.1, 3)
            .degraded_links(1, &[0], 2.0, 3.0)
            .schedule(30_000);
        let a = sim
            .run_with_faults(&toy(), TrafficPattern::UniformRandom, 0.003, &faults)
            .unwrap();
        let b = sim
            .run_with_faults(&toy(), TrafficPattern::UniformRandom, 0.003, &faults)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batched_rates_match_scalar_engine() {
        let sim = Simulator::default();
        let net = toy();
        let empty = FaultSchedule::default();
        let rates = [0.0005, 0.001, 0.003, 0.006, 0.02];
        let mut batch = BatchSimScratch::new();
        let batched = sim
            .run_rates_with_scratch(
                &net,
                TrafficPattern::UniformRandom,
                &rates,
                &empty,
                &mut batch,
            )
            .unwrap();
        let mut scratch = SimScratch::new();
        for (&rate, got) in rates.iter().zip(&batched) {
            let want = sim
                .run_with_scratch(
                    &net,
                    TrafficPattern::UniformRandom,
                    rate,
                    &empty,
                    &mut scratch,
                )
                .unwrap();
            assert_eq!(*got, want, "rate {rate} diverged from the scalar engine");
        }
        // Scratch reuse across batches (including a narrower grid) is
        // result-invariant.
        let again = sim
            .run_rates_with_scratch(
                &net,
                TrafficPattern::UniformRandom,
                &rates[..2],
                &empty,
                &mut batch,
            )
            .unwrap();
        assert_eq!(again[..], batched[..2]);
    }

    #[test]
    fn batched_rates_with_faults_match_scalar_engine() {
        use cryowire_faults::FaultPlan;
        let sim = Simulator::default();
        let net = toy();
        let faults = FaultPlan::new(7)
            .flit_loss(0.1, 3)
            .degraded_links(1, &[0], 2.0, 3.0)
            .schedule(30_000);
        let rates = [0.001, 0.003, 0.006];
        let batched = sim
            .run_rates_with_scratch(
                &net,
                TrafficPattern::UniformRandom,
                &rates,
                &faults,
                &mut BatchSimScratch::new(),
            )
            .unwrap();
        for (&rate, got) in rates.iter().zip(&batched) {
            let want = sim
                .run_with_faults(&net, TrafficPattern::UniformRandom, rate, &faults)
                .unwrap();
            assert_eq!(*got, want, "rate {rate}");
        }
    }

    #[test]
    fn batched_rates_reject_bad_rates() {
        let sim = Simulator::default();
        let err = sim
            .run_rates_with_scratch(
                &toy(),
                TrafficPattern::UniformRandom,
                &[0.001, 1.5],
                &FaultSchedule::default(),
                &mut BatchSimScratch::new(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Noc(NocError::InvalidInjectionRate { .. })
        ));
    }

    #[test]
    fn rejects_bad_rates() {
        let sim = Simulator::default();
        assert!(sim
            .run(&toy(), TrafficPattern::UniformRandom, -0.1)
            .is_err());
        assert!(sim.run(&toy(), TrafficPattern::UniformRandom, 1.5).is_err());
        assert!(sim
            .run(&toy(), TrafficPattern::UniformRandom, f64::NAN)
            .is_err());
    }

    #[test]
    fn rejects_degenerate_sim_window() {
        // Regression: these windows used to return a silent 0-packet
        // result with avg_latency 0 instead of an error.
        for (cycles, warmup) in [(0u64, 0u64), (1_000, 1_000), (1_000, 2_000)] {
            let sim = Simulator::new(SimConfig {
                cycles,
                warmup,
                ..SimConfig::default()
            });
            let err = sim
                .run(&toy(), TrafficPattern::UniformRandom, 0.003)
                .unwrap_err();
            assert_eq!(
                err,
                NocError::InvalidSimWindow { cycles, warmup },
                "cycles={cycles} warmup={warmup}"
            );
            // The reference engine rejects the same windows identically.
            let refsim = reference::ReferenceSimulator::new(SimConfig {
                cycles,
                warmup,
                ..SimConfig::default()
            });
            assert_eq!(
                refsim
                    .run(&toy(), TrafficPattern::UniformRandom, 0.003)
                    .unwrap_err(),
                NocError::InvalidSimWindow { cycles, warmup }
            );
        }
    }
}
