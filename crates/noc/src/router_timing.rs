//! Router critical-path timing — the "router model" of Section 3.1.3.
//!
//! The paper feeds a router design (EVA) through CC-Model to get its
//! maximum frequency at low temperature, finding that routers gain only
//! ~9.3 % at 77 K: their critical paths are allocator/crossbar *logic*,
//! not long wires. This module models the five canonical router pipeline
//! stages with per-stage transistor/wire splits and derives the maximum
//! clock at any temperature and voltage, reproducing that observation and
//! Table 4's 5.44 GHz voltage-scaled 77 K mesh clock.

use cryowire_device::{
    GateStyle, MosfetModel, OperatingPoint, ResistivityModel, Temperature, Wire, WireClass,
};

/// One router pipeline stage with its 300 K critical-path decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterStage {
    /// Stage name.
    pub name: &'static str,
    /// Transistor component at 300 K, ps.
    pub transistor_ps: f64,
    /// Wire component at 300 K, ps (short intra-router wires).
    pub wire_ps: f64,
}

impl RouterStage {
    /// Total 300 K delay, ps.
    #[must_use]
    pub fn total_ps(&self) -> f64 {
        self.transistor_ps + self.wire_ps
    }
}

/// The EVA-like 4-VC router's stages, calibrated so the 300 K maximum
/// stage delay is 250 ps (the 4 GHz NoC domain of Table 4) and the
/// transistor share matches the paper's "routers barely speed up"
/// finding.
#[must_use]
pub fn eva_router_stages() -> Vec<RouterStage> {
    let mk = |name, total: f64, wire_frac: f64| RouterStage {
        name,
        transistor_ps: total * (1.0 - wire_frac),
        wire_ps: total * wire_frac,
    };
    vec![
        mk("buffer write/read", 220.0, 0.06),
        mk("route compute", 180.0, 0.03),
        mk("VC allocation", 250.0, 0.03),
        mk("switch allocation", 245.0, 0.04),
        mk("crossbar traversal", 215.0, 0.12),
    ]
}

/// Router timing model bound to the device models.
#[derive(Debug, Clone)]
pub struct RouterTimingModel {
    stages: Vec<RouterStage>,
    mosfet: MosfetModel,
    rho: ResistivityModel,
}

impl RouterTimingModel {
    /// The EVA-like router on the 45 nm device models.
    #[must_use]
    pub fn eva_like() -> Self {
        RouterTimingModel {
            stages: eva_router_stages(),
            mosfet: MosfetModel::industry_45nm(),
            rho: ResistivityModel::intel_45nm(),
        }
    }

    /// The stage table.
    #[must_use]
    pub fn stages(&self) -> &[RouterStage] {
        &self.stages
    }

    /// Intra-router wires are short local/semi-global runs; their delay
    /// factor at `t` relative to 300 K.
    fn wire_factor(&self, t: Temperature) -> f64 {
        let wire = Wire::new(WireClass::Local, 200.0);
        wire.unrepeated_delay_ps(&self.mosfet, &self.rho, t)
            / wire.unrepeated_delay_ps(&self.mosfet, &self.rho, Temperature::ambient())
    }

    /// Maximum clock frequency at `t`, nominal voltage, GHz.
    ///
    /// # Panics
    ///
    /// Never panics for temperatures in the validated range.
    #[must_use]
    pub fn frequency_ghz(&self, t: Temperature) -> f64 {
        let tf = self
            .mosfet
            .nominal_state(GateStyle::ComplexLogic, t)
            .expect("nominal point feasible")
            .delay_factor;
        let wf = self.wire_factor(t);
        let max = self
            .stages
            .iter()
            .map(|s| s.transistor_ps * tf + s.wire_ps * wf)
            .fold(0.0, f64::max);
        1_000.0 / max
    }

    /// Maximum clock at `t` with a voltage-scaled operating point, GHz
    /// (Table 4's 77 K NoC domain: 0.55 V / 0.225 V).
    ///
    /// # Panics
    ///
    /// Panics for infeasible voltage points.
    #[must_use]
    pub fn frequency_ghz_at(&self, t: Temperature, point: OperatingPoint) -> f64 {
        let nominal = self
            .mosfet
            .nominal_state(GateStyle::ComplexLogic, t)
            .expect("nominal point feasible")
            .delay_factor;
        let scaled = self
            .mosfet
            .state(t, point.v_dd, point.v_th)
            .expect("feasible operating point")
            .delay_factor;
        self.frequency_ghz(t) * nominal / scaled
    }
}

impl Default for RouterTimingModel {
    fn default() -> Self {
        RouterTimingModel::eva_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_300k_clock_is_4ghz() {
        let m = RouterTimingModel::eva_like();
        let f = m.frequency_ghz(Temperature::ambient());
        assert!((f - 4.0).abs() < 0.05, "300 K router clock = {f} GHz");
    }

    #[test]
    fn paper_anchor_9_percent_at_77k() {
        // Section 5.1: router frequency improves only ~9.3 % at 77 K
        // without voltage scaling.
        let m = RouterTimingModel::eva_like();
        let gain = m.frequency_ghz(Temperature::liquid_nitrogen())
            / m.frequency_ghz(Temperature::ambient());
        assert!(
            (gain - 1.093).abs() < 0.035,
            "77 K router frequency gain = {gain} (paper 1.093)"
        );
    }

    #[test]
    fn table4_voltage_scaled_mesh_clock() {
        // Table 4: the 77 K mesh runs at 5.44 GHz in the 0.55 V / 0.225 V
        // domain. Our model should land within ~10 %.
        let m = RouterTimingModel::eva_like();
        let f = m.frequency_ghz_at(Temperature::liquid_nitrogen(), OperatingPoint::noc_77k());
        assert!(
            (f - 5.44).abs() / 5.44 < 0.12,
            "voltage-scaled 77 K router clock = {f} GHz (Table 4: 5.44)"
        );
    }

    #[test]
    fn allocators_bound_the_clock() {
        // The critical stage must be allocation logic, not the crossbar
        // wires — that is *why* cooling barely helps.
        let stages = eva_router_stages();
        let max = stages
            .iter()
            .max_by(|a, b| a.total_ps().total_cmp(&b.total_ps()))
            .unwrap();
        assert!(max.name.contains("allocation"));
        assert!(max.wire_ps / max.total_ps() < 0.10);
    }

    #[test]
    fn deep_cooling_wins_despite_the_mild_cooling_dip() {
        // The compact MOSFET calibration (only +8 % logic speed-up at
        // 77 K, driven by a linear V_th rise) implies a slight slowdown
        // around 200–250 K before mobility wins — a known artifact of
        // fitting both anchors. What matters for the paper: 77 K is the
        // fastest point and clearly beats 300 K.
        let m = RouterTimingModel::eva_like();
        let f300 = m.frequency_ghz(Temperature::ambient());
        let f135 = m.frequency_ghz(Temperature::validation_point());
        let f77 = m.frequency_ghz(Temperature::liquid_nitrogen());
        assert!(f77 > f135);
        assert!(f77 > f300);
        for k in [100.0, 135.0, 200.0, 250.0] {
            assert!(m.frequency_ghz(Temperature::new(k).unwrap()) <= f77);
        }
    }
}
