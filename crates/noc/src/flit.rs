//! Flit-level, virtual-channel, credit-flow-controlled router simulation —
//! the fully detailed counterpart of the reservation engine in [`crate::sim`].
//!
//! Implements the router the paper's Table 4 specifies: wormhole switching
//! with **4 virtual channels per input, 3-flit buffers per VC**, XY
//! (dimension-ordered) routing, credit-based flow control, and a 1- or
//! 3-cycle router pipeline. Multi-flit packets model the cache-line data
//! the snooping comparison carries.
//!
//! The engine is used to cross-validate the cheaper reservation model
//! (see the `flit_vs_reservation` tests and the ablation experiment in
//! the facade crate).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::NocError;
use crate::router::RouterClass;
use crate::topology::{NocKind, Topology};
use crate::traffic::TrafficPattern;

/// Configuration of a flit-level network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlitConfig {
    /// Topology kind (must be router-based).
    pub kind: NocKind,
    /// Number of cores.
    pub nodes: usize,
    /// Router pipeline class.
    pub class: RouterClass,
    /// Virtual channels per input port (Table 4: 4).
    pub vcs: usize,
    /// Buffer depth per VC in flits (Table 4: 3).
    pub vc_buffer_flits: usize,
    /// Flits per packet (1 for control, 5 for a 64 B line behind a head).
    pub packet_flits: usize,
}

impl FlitConfig {
    /// The paper's Table 4 mesh router at 64 cores.
    #[must_use]
    pub fn table4_mesh64(class: RouterClass) -> Self {
        FlitConfig {
            kind: NocKind::Mesh,
            nodes: 64,
            class,
            vcs: 4,
            vc_buffer_flits: 3,
            packet_flits: 1,
        }
    }
}

/// One flit in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flit {
    packet: u64,
    dst_router: usize,
    is_tail: bool,
    injected_at: u64,
}

/// Per-input-port state: one FIFO per VC plus the cycle each head flit
/// becomes eligible (models the router pipeline depth).
#[derive(Debug, Clone, Default)]
struct InputVc {
    /// Buffered flits with the cycle each becomes eligible for switch
    /// allocation (models the router pipeline depth).
    queue: VecDeque<(Flit, u64)>,
}

/// A directed channel between two routers (or to the local ejection port).
#[derive(Debug, Clone)]
struct Channel {
    /// Destination router (None = ejection).
    dst_router: Option<usize>,
    /// Credits available per downstream VC.
    credits: Vec<usize>,
    /// Flits in flight on the wire: (arrival cycle, flit, downstream vc).
    in_flight: VecDeque<(u64, Flit, usize)>,
    /// Wire latency in cycles.
    latency: u64,
}

/// A router with dynamic port lists.
#[derive(Debug, Clone)]
struct Router {
    /// Input ports (index 0 = local injection).
    inputs: Vec<Vec<InputVc>>,
    /// Output channels (index 0 = local ejection), aligned with
    /// `neighbors`.
    outputs: Vec<Channel>,
    /// Router id of each output's destination (usize::MAX for ejection).
    out_dst: Vec<usize>,
    /// Round-robin pointers per output port.
    rr: Vec<usize>,
}

/// Result of a flit-level run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlitSimResult {
    /// Offered per-node injection rate (packets/node/cycle).
    pub offered_rate: f64,
    /// Average packet latency (injection to tail ejection), cycles.
    pub avg_latency: f64,
    /// Packets measured.
    pub packets: u64,
    /// Packets still stuck in the network at the end (backlog).
    pub backlog: u64,
    /// Whether the run saturated (latency blow-up or large backlog).
    pub saturated: bool,
}

/// The flit-level network simulator.
#[derive(Debug, Clone)]
pub struct FlitNetwork {
    config: FlitConfig,
    topo: Topology,
    router_grid: Topology,
    routers: Vec<Router>,
    concentration: usize,
}

impl FlitNetwork {
    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] for bus kinds or invalid node counts.
    pub fn new(config: FlitConfig) -> Result<Self, NocError> {
        if config.kind.is_bus() {
            return Err(NocError::InvalidNodeCount {
                nodes: config.nodes,
                requirement: "flit simulation models router-based NoCs",
            });
        }
        let topo = Topology::square(config.nodes)?;
        let concentration = match config.kind {
            NocKind::Mesh => 1,
            _ => 4,
        };
        let router_grid = Topology::square(config.nodes / concentration)?;
        let mut net = FlitNetwork {
            config,
            topo,
            router_grid,
            routers: Vec::new(),
            concentration,
        };
        net.build_routers();
        Ok(net)
    }

    fn build_routers(&mut self) {
        let r = self.router_grid.nodes();
        let side = self.router_grid.side();
        let mut routers = Vec::with_capacity(r);
        for id in 0..r {
            let (x, y) = self.router_grid.coords(id);
            // Output 0 = ejection; then neighbors.
            let mut out_dst = vec![usize::MAX];
            match self.config.kind {
                NocKind::FlattenedButterfly => {
                    // Fully connected within row and column.
                    for nx in 0..side {
                        if nx != x {
                            out_dst.push(self.router_grid.node_at(nx, y));
                        }
                    }
                    for ny in 0..side {
                        if ny != y {
                            out_dst.push(self.router_grid.node_at(x, ny));
                        }
                    }
                }
                _ => {
                    if x + 1 < side {
                        out_dst.push(self.router_grid.node_at(x + 1, y));
                    }
                    if x > 0 {
                        out_dst.push(self.router_grid.node_at(x - 1, y));
                    }
                    if y + 1 < side {
                        out_dst.push(self.router_grid.node_at(x, y + 1));
                    }
                    if y > 0 {
                        out_dst.push(self.router_grid.node_at(x, y - 1));
                    }
                }
            }
            let n_out = out_dst.len();
            // Inputs: local injection + one per incoming channel (same
            // neighbor set, symmetric topologies).
            let n_in = n_out;
            let inputs = (0..n_in)
                .map(|_| (0..self.config.vcs).map(|_| InputVc::default()).collect())
                .collect();
            let outputs = out_dst
                .iter()
                .map(|&dst| Channel {
                    dst_router: (dst != usize::MAX).then_some(dst),
                    credits: vec![self.config.vc_buffer_flits; self.config.vcs],
                    in_flight: VecDeque::new(),
                    latency: 1,
                })
                .collect();
            routers.push(Router {
                inputs,
                outputs,
                out_dst,
                rr: vec![0; n_out],
            });
        }
        self.routers = routers;
    }

    fn router_of(&self, core: usize) -> usize {
        if self.concentration == 1 {
            return core;
        }
        let (x, y) = self.topo.coords(core);
        self.router_grid.node_at(x / 2, y / 2)
    }

    /// Next-hop output port at `router` toward `dst_router`.
    fn route(&self, router: usize, dst_router: usize) -> usize {
        if router == dst_router {
            return 0; // ejection
        }
        let (x, y) = self.router_grid.coords(router);
        let (dx, dy) = self.router_grid.coords(dst_router);
        let next = match self.config.kind {
            NocKind::FlattenedButterfly => {
                if x != dx {
                    self.router_grid.node_at(dx, y)
                } else {
                    self.router_grid.node_at(x, dy)
                }
            }
            _ => {
                if x != dx {
                    let nx = if dx > x { x + 1 } else { x - 1 };
                    self.router_grid.node_at(nx, y)
                } else {
                    let ny = if dy > y { y + 1 } else { y - 1 };
                    self.router_grid.node_at(x, ny)
                }
            }
        };
        self.routers[router]
            .out_dst
            .iter()
            .position(|&d| d == next)
            .expect("topology is connected")
    }

    /// Input-port index at `dst` for flits arriving from `src` — mirrors
    /// the output list (port 0 is local).
    fn input_port_at(&self, dst: usize, src: usize) -> usize {
        self.routers[dst]
            .out_dst
            .iter()
            .position(|&d| d == src)
            .expect("channels are symmetric")
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidInjectionRate`] for rates outside [0, 1].
    #[allow(clippy::needless_range_loop)] // `src` indexes two structures
    pub fn run(
        &mut self,
        pattern: TrafficPattern,
        rate: f64,
        cycles: u64,
        warmup: u64,
        seed: u64,
    ) -> Result<FlitSimResult, NocError> {
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(NocError::InvalidInjectionRate { rate });
        }
        pattern.validate(&self.topo)?;
        self.build_routers(); // reset state
        let mut rng = StdRng::seed_from_u64(seed);
        let pipeline = self.config.class.cycles();
        let mut next_packet: u64 = 0;
        let mut total_latency: u64 = 0;
        let mut measured: u64 = 0;
        let mut in_network: u64 = 0;
        // Per-node pending injection queue (packets waiting for VC space).
        let mut pending: Vec<VecDeque<Flit>> = vec![VecDeque::new(); self.topo.nodes()];
        let mut zero_latency_sum: f64 = 0.0;

        for cycle in 0..cycles {
            // 1. Generate new packets.
            let p = rate * pattern.burst_scale(cycle);
            for src in 0..self.topo.nodes() {
                if rng.gen::<f64>() < p {
                    let dst = pattern.destination(src, &self.topo, &mut rng);
                    let dst_router = self.router_of(dst);
                    let id = next_packet;
                    next_packet += 1;
                    for f in 0..self.config.packet_flits {
                        pending[src].push_back(Flit {
                            packet: id,
                            dst_router,
                            is_tail: f == self.config.packet_flits - 1,
                            injected_at: cycle,
                        });
                    }
                    in_network += 1;
                    zero_latency_sum += self
                        .router_grid
                        .manhattan_hops(self.router_of(src), dst_router)
                        as f64;
                }
            }

            // 2. Inject pending flits into the local input VC 0 if space.
            for src in 0..self.topo.nodes() {
                let router = self.router_of(src);
                while let Some(&flit) = pending[src].front() {
                    let vc = &mut self.routers[router].inputs[0][0];
                    if vc.queue.len() < self.config.vc_buffer_flits * self.config.vcs {
                        vc.queue.push_back((flit, cycle + pipeline));
                        pending[src].pop_front();
                    } else {
                        break;
                    }
                }
            }

            // 3. Deliver in-flight flits that arrive this cycle.
            for rid in 0..self.routers.len() {
                for out in 0..self.routers[rid].outputs.len() {
                    while let Some(&(arrival, flit, vc)) =
                        self.routers[rid].outputs[out].in_flight.front()
                    {
                        if arrival > cycle {
                            break;
                        }
                        self.routers[rid].outputs[out].in_flight.pop_front();
                        match self.routers[rid].outputs[out].dst_router {
                            Some(dst) => {
                                let port = self.input_port_at(dst, rid);
                                self.routers[dst].inputs[port][vc]
                                    .queue
                                    .push_back((flit, cycle + pipeline));
                            }
                            None => {
                                // Ejection: packet leaves on its tail flit.
                                if flit.is_tail {
                                    in_network = in_network.saturating_sub(1);
                                    if flit.injected_at >= warmup {
                                        total_latency += cycle - flit.injected_at;
                                        measured += 1;
                                    }
                                }
                                // Ejection frees no credits (infinite sink).
                            }
                        }
                    }
                }
            }

            // 4. Switch allocation: each output picks one eligible
            //    (input, vc) head flit, round-robin.
            for rid in 0..self.routers.len() {
                let n_out = self.routers[rid].outputs.len();
                let n_in = self.routers[rid].inputs.len();
                let vcs = self.config.vcs;
                for out in 0..n_out {
                    let start = self.routers[rid].rr[out];
                    let mut winner: Option<(usize, usize)> = None;
                    for k in 0..(n_in * vcs) {
                        let idx = (start + k) % (n_in * vcs);
                        let (inp, vc) = (idx / vcs, idx % vcs);
                        let ivc = &self.routers[rid].inputs[inp][vc];
                        let Some(&(flit, eligible)) = ivc.queue.front() else {
                            continue;
                        };
                        if eligible > cycle {
                            continue;
                        }
                        // Route (recomputed per flit; packets here are
                        // short, so per-flit routing equals wormhole).
                        let want = self.route(rid, flit.dst_router);
                        if want != out {
                            continue;
                        }
                        // VC allocation on the output: reuse the same VC
                        // index downstream; need a credit (ejection
                        // always has credit).
                        let has_credit = self.routers[rid].outputs[out].dst_router.is_none()
                            || self.routers[rid].outputs[out].credits[vc] > 0;
                        if !has_credit {
                            continue;
                        }
                        winner = Some((inp, vc));
                        self.routers[rid].rr[out] = (idx + 1) % (n_in * vcs);
                        break;
                    }
                    if let Some((inp, vc)) = winner {
                        let (flit, _) = self.routers[rid].inputs[inp][vc]
                            .queue
                            .pop_front()
                            .expect("winner has a flit");
                        let latency = self.routers[rid].outputs[out].latency;
                        if self.routers[rid].outputs[out].dst_router.is_some() {
                            self.routers[rid].outputs[out].credits[vc] -= 1;
                        }
                        self.routers[rid].outputs[out].in_flight.push_back((
                            cycle + latency,
                            flit,
                            vc,
                        ));
                        // Credit return: the buffer slot this flit just
                        // freed belongs to the upstream channel feeding
                        // input `inp` (port 0 is local injection).
                        if inp != 0 {
                            let upstream = self.routers[rid].out_dst[inp];
                            let up_out = self.routers[upstream]
                                .out_dst
                                .iter()
                                .position(|&d| d == rid)
                                .expect("channels are symmetric");
                            self.routers[upstream].outputs[up_out].credits[vc] += 1;
                        }
                    }
                }
            }
        }

        let avg_latency = if measured == 0 {
            0.0
        } else {
            total_latency as f64 / measured as f64
        };
        let zero_load = if next_packet == 0 {
            1.0
        } else {
            (zero_latency_sum / next_packet as f64 + 1.0)
                * (self.config.class.cycles() as f64 + 1.0)
        };
        let saturated = measured == 0 && next_packet > 0
            || avg_latency > 12.0 * zero_load
            || in_network > next_packet / 2;
        Ok(FlitSimResult {
            offered_rate: rate,
            avg_latency,
            packets: measured,
            backlog: in_network,
            saturated,
        })
    }
}

/// Sweeps injection rates on a flit-level network and returns a
/// [`LoadLatencyCurve`](crate::load_latency::LoadLatencyCurve) comparable
/// with the reservation engine's — the full-fidelity path for router
/// curves.
///
/// # Errors
///
/// Propagates invalid rates or patterns.
pub fn flit_load_latency(
    config: FlitConfig,
    pattern: TrafficPattern,
    rates: &[f64],
    cycles: u64,
    warmup: u64,
) -> Result<crate::load_latency::LoadLatencyCurve, NocError> {
    use crate::load_latency::{LoadLatencyCurve, LoadLatencyPoint};
    let mut net = FlitNetwork::new(config)?;
    let mut points = Vec::new();
    let mut saturated_seen = 0;
    for &rate in rates {
        let r = net.run(pattern, rate, cycles, warmup, 0xF117)?;
        points.push(LoadLatencyPoint {
            rate,
            latency: r.avg_latency,
            saturated: r.saturated,
        });
        if r.saturated {
            saturated_seen += 1;
            if saturated_seen >= 2 {
                break;
            }
        }
    }
    Ok(LoadLatencyCurve {
        network: format!("{:?} (flit-level)", config.kind),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh64(class: RouterClass) -> FlitNetwork {
        FlitNetwork::new(FlitConfig::table4_mesh64(class)).expect("valid")
    }

    #[test]
    fn flit_curve_has_hockey_stick_shape() {
        let curve = flit_load_latency(
            FlitConfig::table4_mesh64(RouterClass::OneCycle),
            TrafficPattern::UniformRandom,
            &[0.002, 0.02, 0.08, 0.2, 0.4, 0.8],
            6_000,
            1_500,
        )
        .unwrap();
        assert!(curve.zero_load_latency() < 20.0);
        assert!(
            curve.saturation_rate().is_some(),
            "high loads must saturate the flit mesh"
        );
    }

    #[test]
    fn rejects_bus_kinds() {
        let bad = FlitConfig {
            kind: NocKind::CryoBus,
            ..FlitConfig::table4_mesh64(RouterClass::OneCycle)
        };
        assert!(FlitNetwork::new(bad).is_err());
    }

    #[test]
    fn low_load_latency_reasonable() {
        // Zero-load mesh latency ≈ (avg hops + 1) × (router + link) ≈ 12.7
        // cycles; low-load measurement must be in that neighbourhood.
        let mut net = mesh64(RouterClass::OneCycle);
        let r = net
            .run(TrafficPattern::UniformRandom, 0.002, 12_000, 2_000, 7)
            .unwrap();
        assert!(!r.saturated);
        assert!(
            r.avg_latency > 8.0 && r.avg_latency < 18.0,
            "low-load flit latency = {}",
            r.avg_latency
        );
    }

    #[test]
    fn three_cycle_router_is_slower() {
        let mut one = mesh64(RouterClass::OneCycle);
        let mut three = mesh64(RouterClass::ThreeCycle);
        let a = one
            .run(TrafficPattern::UniformRandom, 0.002, 10_000, 2_000, 7)
            .unwrap();
        let b = three
            .run(TrafficPattern::UniformRandom, 0.002, 10_000, 2_000, 7)
            .unwrap();
        assert!(b.avg_latency > a.avg_latency + 3.0);
    }

    #[test]
    fn latency_grows_with_load() {
        let mut net = mesh64(RouterClass::OneCycle);
        let lo = net
            .run(TrafficPattern::UniformRandom, 0.005, 10_000, 2_000, 7)
            .unwrap();
        let hi = net
            .run(TrafficPattern::UniformRandom, 0.15, 10_000, 2_000, 7)
            .unwrap();
        assert!(hi.avg_latency > lo.avg_latency);
    }

    #[test]
    fn extreme_load_saturates() {
        let mut net = mesh64(RouterClass::OneCycle);
        let r = net
            .run(TrafficPattern::UniformRandom, 0.9, 6_000, 1_000, 7)
            .unwrap();
        assert!(r.saturated, "90% injection must saturate a mesh");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = mesh64(RouterClass::OneCycle);
        let mut b = mesh64(RouterClass::OneCycle);
        let ra = a
            .run(TrafficPattern::UniformRandom, 0.01, 6_000, 1_000, 11)
            .unwrap();
        let rb = b
            .run(TrafficPattern::UniformRandom, 0.01, 6_000, 1_000, 11)
            .unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn flit_conservation() {
        // Everything injected is either measured, pre-warmup, or backlog.
        let mut net = mesh64(RouterClass::OneCycle);
        let r = net
            .run(TrafficPattern::UniformRandom, 0.01, 8_000, 0, 3)
            .unwrap();
        assert!(r.packets + r.backlog > 0);
        // With warmup 0, measured + backlog accounts for every packet.
        assert!(r.packets > 0);
    }

    #[test]
    fn multi_flit_packets_have_serialization_latency() {
        let mut one_flit = mesh64(RouterClass::OneCycle);
        let mut five = FlitNetwork::new(FlitConfig {
            packet_flits: 5,
            ..FlitConfig::table4_mesh64(RouterClass::OneCycle)
        })
        .expect("valid");
        let a = one_flit
            .run(TrafficPattern::UniformRandom, 0.002, 10_000, 2_000, 7)
            .unwrap();
        let b = five
            .run(TrafficPattern::UniformRandom, 0.002, 10_000, 2_000, 7)
            .unwrap();
        assert!(
            b.avg_latency > a.avg_latency + 2.0,
            "5-flit packets must pay a serialization tail: {} vs {}",
            b.avg_latency,
            a.avg_latency
        );
    }

    #[test]
    fn fb_has_lower_latency_than_mesh() {
        let mut mesh = mesh64(RouterClass::OneCycle);
        let mut fb = FlitNetwork::new(FlitConfig {
            kind: NocKind::FlattenedButterfly,
            ..FlitConfig::table4_mesh64(RouterClass::OneCycle)
        })
        .expect("valid");
        let a = mesh
            .run(TrafficPattern::UniformRandom, 0.002, 10_000, 2_000, 7)
            .unwrap();
        let b = fb
            .run(TrafficPattern::UniformRandom, 0.002, 10_000, 2_000, 7)
            .unwrap();
        assert!(b.avg_latency < a.avg_latency);
    }
}
