//! Counting-allocator proof that the steady-state hot loops allocate
//! nothing: after one warm-up run populates the scratch (route arena +
//! free vector), a further fault-free run must perform **zero** heap
//! allocations, and a steady-state batched rate-grid run must allocate
//! only its returned result vector. Kept in its own integration-test
//! binary (one test function, so no concurrent test can perturb the
//! global counter) so the allocator hook does not interfere with other
//! suites.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cryowire_device::Temperature;
use cryowire_faults::FaultSchedule;
use cryowire_noc::{BatchSimScratch, CryoBus, SimConfig, SimScratch, Simulator, TrafficPattern};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Passes everything through to the system allocator, counting every
/// allocation (and growth reallocation).
struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_hot_loop_allocates_nothing() {
    let t77 = Temperature::liquid_nitrogen();
    let net = CryoBus::two_way(64, t77);
    let sim = Simulator::new(SimConfig {
        cycles: 6_000,
        warmup: 1_000,
        ..SimConfig::default()
    });
    let empty = FaultSchedule::default();
    let mut scratch = SimScratch::new();

    // Warm-up: builds the route arena and sizes the free vector.
    let warm = sim
        .run_with_scratch(
            &net,
            TrafficPattern::UniformRandom,
            0.008,
            &empty,
            &mut scratch,
        )
        .expect("valid run");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let steady = sim
        .run_with_scratch(
            &net,
            TrafficPattern::UniformRandom,
            0.008,
            &empty,
            &mut scratch,
        )
        .expect("valid run");
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(warm, steady, "scratch reuse must not change results");
    assert_eq!(
        after - before,
        0,
        "steady-state run_with_scratch must not allocate"
    );

    // Batched rate grid: after one warm batch builds the shared route
    // table, lane vector and free slab, a steady-state run's only
    // allocation is the `Vec<SimResult>` it returns — the lockstep loop
    // itself allocates nothing.
    let rates = [0.004, 0.008, 0.016];
    let mut batch = BatchSimScratch::new();
    let warm_grid = sim
        .run_rates_with_scratch(
            &net,
            TrafficPattern::UniformRandom,
            &rates,
            &empty,
            &mut batch,
        )
        .expect("valid batched run");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let steady_grid = sim
        .run_rates_with_scratch(
            &net,
            TrafficPattern::UniformRandom,
            &rates,
            &empty,
            &mut batch,
        )
        .expect("valid batched run");
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(warm_grid, steady_grid, "scratch reuse changed the grid");
    assert!(
        after - before <= 1,
        "steady-state batched loop must only allocate its result vector \
         (counted {} allocations)",
        after - before
    );
}
