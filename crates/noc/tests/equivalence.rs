//! Bit-identity of the memoized hot-loop engine against the retained
//! naive reference engine (`sim::reference`), across the full
//! acceptance matrix: seeds × traffic patterns × fault plans × network
//! families. "Bit-identical" means the entire `SimResult` — including
//! drop/unroute counters — or the identical `SimError`, since both
//! engines must consume the same RNG stream draw for draw.

use cryowire_device::Temperature;
use cryowire_faults::{FaultEvent, FaultKind, FaultSchedule};
use cryowire_noc::sim::reference::ReferenceSimulator;
use cryowire_noc::{
    CryoBus, Network, NocKind, RouterClass, RouterNetwork, SharedBus, SimConfig, Simulator,
    TrafficPattern,
};

const CYCLES: u64 = 3_000;

fn networks() -> Vec<Box<dyn Network>> {
    let t77 = Temperature::liquid_nitrogen();
    vec![
        Box::new(SharedBus::new(64, t77)),
        Box::new(CryoBus::new(64, t77)),
        Box::new(CryoBus::two_way(64, t77)),
        Box::new(
            RouterNetwork::new(NocKind::Mesh, 64, RouterClass::OneCycle, t77).expect("valid mesh"),
        ),
    ]
}

fn patterns() -> Vec<(TrafficPattern, &'static str)> {
    vec![
        (TrafficPattern::UniformRandom, "uniform"),
        (TrafficPattern::Transpose, "transpose"),
        (TrafficPattern::hotspot_default(), "hotspot"),
        (TrafficPattern::BitReverse, "bit-reverse"),
        (TrafficPattern::burst_default(), "burst"),
    ]
}

fn plans() -> Vec<(FaultSchedule, &'static str)> {
    vec![
        (FaultSchedule::default(), "no faults"),
        (
            FaultSchedule::from_events(
                vec![FaultEvent::permanent(
                    1_000,
                    FaultKind::LinkDead { resource: 0 },
                )],
                CYCLES,
            ),
            "link-death",
        ),
        (
            FaultSchedule::from_events(
                vec![FaultEvent::permanent(
                    0,
                    FaultKind::FlitLoss {
                        probability: 0.2,
                        max_retransmits: 2,
                    },
                )],
                CYCLES,
            ),
            "flit-loss",
        ),
        (
            FaultSchedule::from_events(
                vec![FaultEvent::transient(
                    500,
                    2_500,
                    FaultKind::CoolingTransient { peak_kelvin: 120.0 },
                )],
                CYCLES,
            ),
            "cooling-transient",
        ),
    ]
}

#[test]
fn optimized_engine_is_bit_identical_to_reference() {
    for seed in [1u64, 0xC0FFEE, 0xDEAD_BEEF] {
        let config = SimConfig {
            cycles: CYCLES,
            warmup: 500,
            seed,
            ..SimConfig::default()
        };
        let optimized = Simulator::new(config);
        let reference = ReferenceSimulator::new(config);
        for net in networks() {
            for (pattern, pname) in patterns() {
                for (faults, fname) in plans() {
                    for rate in [0.002, 0.01] {
                        let a = optimized.run_with_faults(net.as_ref(), pattern, rate, &faults);
                        let b = reference.run_with_faults(net.as_ref(), pattern, rate, &faults);
                        assert_eq!(
                            a,
                            b,
                            "{} / {pname} / {fname} / seed {seed:#x} / rate {rate}",
                            net.name()
                        );
                    }
                }
            }
        }
    }
}

/// Pins the batched rate-grid engine to the scalar engine: lane `i` of
/// a successful batched run must bit-equal the scalar run at `rates[i]`,
/// and a failed batched run must report exactly the first scalar error
/// in grid order (the documented contract).
fn assert_batched_matches_scalar(
    sim: &Simulator,
    net: &dyn Network,
    pattern: TrafficPattern,
    rates: &[f64],
    faults: &FaultSchedule,
    ctx: &str,
) {
    let mut batch = cryowire_noc::BatchSimScratch::new();
    let got = sim.run_rates_with_scratch(net, pattern, rates, faults, &mut batch);
    let mut scalar = cryowire_noc::SimScratch::new();
    let want: Vec<_> = rates
        .iter()
        .map(|&rate| sim.run_with_scratch(net, pattern, rate, faults, &mut scalar))
        .collect();
    match got {
        Ok(lanes) => {
            assert_eq!(lanes.len(), rates.len(), "{ctx}: lane count");
            for ((lane, want), rate) in lanes.iter().zip(&want).zip(rates) {
                assert_eq!(Ok(lane), want.as_ref(), "{ctx} / rate {rate}");
            }
        }
        Err(e) => {
            let first = want
                .iter()
                .find_map(|r| r.as_ref().err())
                .unwrap_or_else(|| {
                    panic!("{ctx}: batched failed ({e:?}) but every scalar rate succeeded")
                });
            assert_eq!(&e, first, "{ctx}: batched and scalar errors differ");
        }
    }
}

#[test]
fn batched_rate_grid_is_bit_identical_to_scalar_runs() {
    // The batched engine must reproduce the scalar per-rate results
    // exactly — including the RNG draw order — across the acceptance
    // matrix, and across fault plans (which take the sequential
    // fallback path through the shared scratch).
    for seed in [1u64, 0xC0FFEE] {
        let config = SimConfig {
            cycles: CYCLES,
            warmup: 500,
            seed,
            ..SimConfig::default()
        };
        let sim = Simulator::new(config);
        let rates = [0.0, 0.002, 0.01, 0.03];
        for net in networks() {
            for (pattern, pname) in patterns() {
                for (faults, fname) in plans() {
                    let ctx = format!("{} / {pname} / {fname} / seed {seed:#x}", net.name());
                    assert_batched_matches_scalar(
                        &sim,
                        net.as_ref(),
                        pattern,
                        &rates,
                        &faults,
                        &ctx,
                    );
                }
            }
        }
    }
}

#[test]
fn randomized_fault_plans_keep_batched_and_scalar_grids_identical() {
    // Derives pseudo-random fault plans (event kinds, onsets, windows)
    // from a seeded LCG and pins batched == scalar for each; exercises
    // the faulted fallback with dead sets and loss probabilities the
    // hand-written plans above don't cover.
    let t77 = Temperature::liquid_nitrogen();
    let net = CryoBus::two_way(64, t77);
    let rates = [0.004, 0.012];
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for trial in 0..12u64 {
        let onset = next() % (CYCLES / 2);
        let end = onset + 1 + next() % (CYCLES - onset);
        let kind = match next() % 3 {
            0 => FaultKind::LinkDead {
                resource: (next() % 2) as usize,
            },
            1 => FaultKind::FlitLoss {
                probability: (next() % 40) as f64 / 100.0,
                max_retransmits: (next() % 4) as u32,
            },
            _ => FaultKind::CoolingTransient {
                peak_kelvin: 90.0 + (next() % 200) as f64,
            },
        };
        let faults =
            FaultSchedule::from_events(vec![FaultEvent::transient(onset, end, kind)], CYCLES);
        let config = SimConfig {
            cycles: CYCLES,
            warmup: 500,
            seed: next(),
            ..SimConfig::default()
        };
        let sim = Simulator::new(config);
        assert_batched_matches_scalar(
            &sim,
            &net,
            TrafficPattern::UniformRandom,
            &rates,
            &faults,
            &format!("trial {trial} / {kind:?}"),
        );
    }
}

#[test]
fn scratch_reuse_across_fault_epochs_is_bit_identical() {
    // A schedule whose dead set changes mid-run (way 0 dies, later the
    // whole window ends) forces the optimized engine to switch route
    // epochs; the curve must still match the reference run-for-run.
    let t77 = Temperature::liquid_nitrogen();
    let net = CryoBus::two_way(64, t77);
    let faults = FaultSchedule::from_events(
        vec![
            FaultEvent::transient(800, 2_200, FaultKind::LinkDead { resource: 0 }),
            FaultEvent::permanent(
                0,
                FaultKind::FlitLoss {
                    probability: 0.05,
                    max_retransmits: 3,
                },
            ),
        ],
        CYCLES,
    );
    let config = SimConfig {
        cycles: CYCLES,
        warmup: 500,
        ..SimConfig::default()
    };
    let optimized = Simulator::new(config);
    let reference = ReferenceSimulator::new(config);
    let mut scratch = cryowire_noc::SimScratch::new();
    for rate in [0.002, 0.006, 0.012] {
        let a = optimized
            .run_with_scratch(
                &net,
                TrafficPattern::UniformRandom,
                rate,
                &faults,
                &mut scratch,
            )
            .unwrap();
        let b = reference
            .run_with_faults(&net, TrafficPattern::UniformRandom, rate, &faults)
            .unwrap();
        assert_eq!(a, b, "rate {rate}");
    }
}
