//! Bit-identity of the memoized hot-loop engine against the retained
//! naive reference engine (`sim::reference`), across the full
//! acceptance matrix: seeds × traffic patterns × fault plans × network
//! families. "Bit-identical" means the entire `SimResult` — including
//! drop/unroute counters — or the identical `SimError`, since both
//! engines must consume the same RNG stream draw for draw.

use cryowire_device::Temperature;
use cryowire_faults::{FaultEvent, FaultKind, FaultSchedule};
use cryowire_noc::sim::reference::ReferenceSimulator;
use cryowire_noc::{
    CryoBus, Network, NocKind, RouterClass, RouterNetwork, SharedBus, SimConfig, Simulator,
    TrafficPattern,
};

const CYCLES: u64 = 3_000;

fn networks() -> Vec<Box<dyn Network>> {
    let t77 = Temperature::liquid_nitrogen();
    vec![
        Box::new(SharedBus::new(64, t77)),
        Box::new(CryoBus::new(64, t77)),
        Box::new(CryoBus::two_way(64, t77)),
        Box::new(
            RouterNetwork::new(NocKind::Mesh, 64, RouterClass::OneCycle, t77).expect("valid mesh"),
        ),
    ]
}

fn patterns() -> Vec<(TrafficPattern, &'static str)> {
    vec![
        (TrafficPattern::UniformRandom, "uniform"),
        (TrafficPattern::Transpose, "transpose"),
        (TrafficPattern::hotspot_default(), "hotspot"),
        (TrafficPattern::BitReverse, "bit-reverse"),
        (TrafficPattern::burst_default(), "burst"),
    ]
}

fn plans() -> Vec<(FaultSchedule, &'static str)> {
    vec![
        (FaultSchedule::default(), "no faults"),
        (
            FaultSchedule::from_events(
                vec![FaultEvent::permanent(
                    1_000,
                    FaultKind::LinkDead { resource: 0 },
                )],
                CYCLES,
            ),
            "link-death",
        ),
        (
            FaultSchedule::from_events(
                vec![FaultEvent::permanent(
                    0,
                    FaultKind::FlitLoss {
                        probability: 0.2,
                        max_retransmits: 2,
                    },
                )],
                CYCLES,
            ),
            "flit-loss",
        ),
        (
            FaultSchedule::from_events(
                vec![FaultEvent::transient(
                    500,
                    2_500,
                    FaultKind::CoolingTransient { peak_kelvin: 120.0 },
                )],
                CYCLES,
            ),
            "cooling-transient",
        ),
    ]
}

#[test]
fn optimized_engine_is_bit_identical_to_reference() {
    for seed in [1u64, 0xC0FFEE, 0xDEAD_BEEF] {
        let config = SimConfig {
            cycles: CYCLES,
            warmup: 500,
            seed,
            ..SimConfig::default()
        };
        let optimized = Simulator::new(config);
        let reference = ReferenceSimulator::new(config);
        for net in networks() {
            for (pattern, pname) in patterns() {
                for (faults, fname) in plans() {
                    for rate in [0.002, 0.01] {
                        let a = optimized.run_with_faults(net.as_ref(), pattern, rate, &faults);
                        let b = reference.run_with_faults(net.as_ref(), pattern, rate, &faults);
                        assert_eq!(
                            a,
                            b,
                            "{} / {pname} / {fname} / seed {seed:#x} / rate {rate}",
                            net.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn scratch_reuse_across_fault_epochs_is_bit_identical() {
    // A schedule whose dead set changes mid-run (way 0 dies, later the
    // whole window ends) forces the optimized engine to switch route
    // epochs; the curve must still match the reference run-for-run.
    let t77 = Temperature::liquid_nitrogen();
    let net = CryoBus::two_way(64, t77);
    let faults = FaultSchedule::from_events(
        vec![
            FaultEvent::transient(800, 2_200, FaultKind::LinkDead { resource: 0 }),
            FaultEvent::permanent(
                0,
                FaultKind::FlitLoss {
                    probability: 0.05,
                    max_retransmits: 3,
                },
            ),
        ],
        CYCLES,
    );
    let config = SimConfig {
        cycles: CYCLES,
        warmup: 500,
        ..SimConfig::default()
    };
    let optimized = Simulator::new(config);
    let reference = ReferenceSimulator::new(config);
    let mut scratch = cryowire_noc::SimScratch::new();
    for rate in [0.002, 0.006, 0.012] {
        let a = optimized
            .run_with_scratch(
                &net,
                TrafficPattern::UniformRandom,
                rate,
                &faults,
                &mut scratch,
            )
            .unwrap();
        let b = reference
            .run_with_faults(&net, TrafficPattern::UniformRandom, rate, &faults)
            .unwrap();
        assert_eq!(a, b, "rate {rate}");
    }
}
