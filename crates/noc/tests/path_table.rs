//! Property test: the memoized [`PathTable`] returns byte-identical
//! legs to direct `Network::path`/`path_avoiding` calls for random
//! `(src, dst, tag, dead-set)` samples on the mesh, the shared bus, and
//! the (2-way) CryoBus — i.e. the [`Network::route_classes`] contract
//! holds for every concrete network family.

use cryowire_device::Temperature;
use cryowire_noc::{
    CryoBus, Network, NocKind, PathTable, RouterClass, RouterNetwork, SharedBus, TrafficPattern,
};
use proptest::prelude::*;

fn networks() -> Vec<Box<dyn Network>> {
    let t77 = Temperature::liquid_nitrogen();
    vec![
        Box::new(
            RouterNetwork::new(NocKind::Mesh, 64, RouterClass::OneCycle, t77).expect("valid mesh"),
        ),
        Box::new(SharedBus::new(64, t77)),
        Box::new(CryoBus::two_way(64, t77)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn path_table_matches_direct_routing(
        src in 0usize..64,
        dst in 0usize..64,
        tag in any::<u64>(),
        dead in proptest::collection::vec(0usize..8, 0..3),
    ) {
        prop_assume!(src != dst);
        for net in networks() {
            let mut table = PathTable::new();
            table.rebuild(net.as_ref(), &dead);
            let direct = if dead.is_empty() {
                Some(net.path(src, dst, tag))
            } else {
                net.path_avoiding(src, dst, tag, &dead)
            };
            match (table.lookup(src, dst, tag), direct) {
                (Some((legs, zero)), Some(d)) => {
                    prop_assert_eq!(
                        legs, d.as_slice(),
                        "{}: legs diverge for ({src}, {dst}, {tag:#x}, {dead:?})",
                        net.name()
                    );
                    prop_assert_eq!(
                        zero,
                        d.iter().map(|l| l.traversal_cycles).sum::<u64>(),
                        "{}: zero-load sum diverges", net.name()
                    );
                }
                (None, None) => {}
                (cached, direct) => prop_assert!(
                    false,
                    "{}: routability diverges for ({src}, {dst}, {tag:#x}, {dead:?}): \
                     cached={:?} direct={:?}",
                    net.name(), cached.map(|(l, _)| l.to_vec()), direct
                ),
            }
        }
    }
}

#[test]
fn route_classes_cover_every_tag_path() {
    // Exhaustive check on the interleaved bus: for every tag in a window
    // wider than the class count, the memoized route equals the direct
    // one (classes wrap exactly as `tag % classes`).
    let t77 = Temperature::liquid_nitrogen();
    let bus = CryoBus::two_way(64, t77);
    let mut table = PathTable::new();
    table.rebuild(&bus, &[]);
    assert_eq!(table.classes(), 2);
    for tag in 0u64..8 {
        let (legs, _) = table.lookup(3, 40, tag).expect("routable");
        assert_eq!(legs, bus.path(3, 40, tag).as_slice(), "tag {tag}");
    }
    // And under a dead way the class count collapses to the survivors.
    table.rebuild(&bus, &[0]);
    assert_eq!(table.classes(), 1);
    for tag in 0u64..4 {
        let (legs, _) = table.lookup(3, 40, tag).expect("routable");
        assert_eq!(
            legs,
            bus.path_avoiding(3, 40, tag, &[0])
                .expect("way 1 survives")
                .as_slice(),
            "tag {tag} under dead way 0"
        );
    }
    // Patterns never self-send, so the diagonal is never consulted; the
    // engine's public behaviour is covered by the equivalence suite.
    let _ = TrafficPattern::UniformRandom;
}
