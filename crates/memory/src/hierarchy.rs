//! Cache and DRAM latency specifications (Table 4, "Memory specification").
//!
//! All cache latencies are quoted in cycles at the 4 GHz reference clock,
//! exactly as the paper's Table 4 does; DRAM random-access latency is in
//! nanoseconds (DDR4-2400 at 300 K, CLL-DRAM at 77 K).

/// One cache level's specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelSpec {
    /// Capacity in KiB (per core for private levels, per-core slice for
    /// the shared L3).
    pub size_kib: usize,
    /// Access latency in cycles at the 4 GHz reference clock.
    pub latency_cycles_at_4ghz: u64,
}

impl CacheLevelSpec {
    /// Access latency in nanoseconds.
    #[must_use]
    pub fn latency_ns(&self) -> f64 {
        self.latency_cycles_at_4ghz as f64 / 4.0
    }
}

/// A full memory hierarchy (Table 4's 300 K or 77 K column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryDesign {
    name: &'static str,
    l1: CacheLevelSpec,
    l2: CacheLevelSpec,
    l3: CacheLevelSpec,
    dram_ns: f64,
}

impl MemoryDesign {
    /// The 300 K memory: i7-6700 caches + DDR4-2400.
    #[must_use]
    pub fn mem_300k() -> Self {
        MemoryDesign {
            name: "300K memory",
            l1: CacheLevelSpec {
                size_kib: 32,
                latency_cycles_at_4ghz: 4,
            },
            l2: CacheLevelSpec {
                size_kib: 256,
                latency_cycles_at_4ghz: 12,
            },
            l3: CacheLevelSpec {
                size_kib: 1_024,
                latency_cycles_at_4ghz: 20,
            },
            dram_ns: 60.32,
        }
    }

    /// The 77 K memory: cryogenic SRAM caches (CryoCache) + CLL-DRAM.
    #[must_use]
    pub fn mem_77k() -> Self {
        MemoryDesign {
            name: "77K memory",
            l1: CacheLevelSpec {
                size_kib: 32,
                latency_cycles_at_4ghz: 2,
            },
            l2: CacheLevelSpec {
                size_kib: 256,
                latency_cycles_at_4ghz: 6,
            },
            l3: CacheLevelSpec {
                size_kib: 1_024,
                latency_cycles_at_4ghz: 10,
            },
            dram_ns: 15.84,
        }
    }

    /// A hierarchy linearly interpolated between the 77 K and 300 K
    /// designs by temperature — the Section 7.4 assumption that memory
    /// performance scales linearly with temperature.
    ///
    /// # Panics
    ///
    /// Never panics for temperatures in the validated device range.
    #[must_use]
    pub fn interpolated(t: cryowire_device::Temperature) -> Self {
        let cold = MemoryDesign::mem_77k();
        let hot = MemoryDesign::mem_300k();
        let frac = ((t.kelvin() - 77.0) / (300.0 - 77.0)).clamp(0.0, 1.0);
        let lerp = |a: f64, b: f64| a + (b - a) * frac;
        let level = |c: CacheLevelSpec, h: CacheLevelSpec| CacheLevelSpec {
            size_kib: c.size_kib,
            latency_cycles_at_4ghz: lerp(
                c.latency_cycles_at_4ghz as f64,
                h.latency_cycles_at_4ghz as f64,
            )
            .round() as u64,
        };
        MemoryDesign {
            name: "interpolated memory",
            l1: level(cold.l1, hot.l1),
            l2: level(cold.l2, hot.l2),
            l3: level(cold.l3, hot.l3),
            dram_ns: lerp(cold.dram_ns, hot.dram_ns),
        }
    }

    /// Design name as in Table 4.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// L1 specification.
    #[must_use]
    pub fn l1(&self) -> CacheLevelSpec {
        self.l1
    }

    /// L2 specification.
    #[must_use]
    pub fn l2(&self) -> CacheLevelSpec {
        self.l2
    }

    /// Shared L3 (per-core slice) specification.
    #[must_use]
    pub fn l3(&self) -> CacheLevelSpec {
        self.l3
    }

    /// DRAM random-access latency, ns.
    #[must_use]
    pub fn dram_latency_ns(&self) -> f64 {
        self.dram_ns
    }

    /// Total shared L3 capacity for an `n`-core die, MiB.
    #[must_use]
    pub fn total_l3_mib(&self, cores: usize) -> usize {
        self.l3.size_kib * cores / 1_024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_300k_values() {
        let m = MemoryDesign::mem_300k();
        assert_eq!(m.l1().latency_cycles_at_4ghz, 4);
        assert_eq!(m.l2().latency_cycles_at_4ghz, 12);
        assert_eq!(m.l3().latency_cycles_at_4ghz, 20);
        assert!((m.dram_latency_ns() - 60.32).abs() < 1e-9);
    }

    #[test]
    fn table4_77k_values() {
        let m = MemoryDesign::mem_77k();
        assert_eq!(m.l1().latency_cycles_at_4ghz, 2);
        assert_eq!(m.l2().latency_cycles_at_4ghz, 6);
        assert_eq!(m.l3().latency_cycles_at_4ghz, 10);
        assert!((m.dram_latency_ns() - 15.84).abs() < 1e-9);
    }

    #[test]
    fn paper_anchor_twice_faster_caches() {
        // Section 6.1.1: "twice faster caches and 3.8 times faster DRAM".
        let a = MemoryDesign::mem_300k();
        let b = MemoryDesign::mem_77k();
        assert_eq!(
            a.l3().latency_cycles_at_4ghz,
            2 * b.l3().latency_cycles_at_4ghz
        );
        let dram_ratio = a.dram_latency_ns() / b.dram_latency_ns();
        assert!((dram_ratio - 3.8).abs() < 0.05, "DRAM ratio = {dram_ratio}");
    }

    #[test]
    fn sixty_four_mib_shared_l3() {
        // Section 5.1: 64-core CPU with 64 MB shared L3 (1 MB per core).
        assert_eq!(MemoryDesign::mem_77k().total_l3_mib(64), 64);
    }

    #[test]
    fn latency_ns_conversion() {
        let l3 = MemoryDesign::mem_77k().l3();
        assert!((l3.latency_ns() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn interpolation_hits_endpoints_and_is_monotone() {
        use cryowire_device::Temperature;
        let at = |k: f64| MemoryDesign::interpolated(Temperature::new(k).unwrap());
        assert_eq!(at(77.0), {
            let mut m = MemoryDesign::mem_77k();
            m.name = "interpolated memory";
            m
        });
        assert!((at(300.0).dram_latency_ns() - 60.32).abs() < 1e-9);
        let mut last = 0.0;
        for k in [77.0, 135.0, 200.0, 250.0, 300.0] {
            let d = at(k).dram_latency_ns();
            assert!(d > last, "DRAM latency must grow with temperature");
            last = d;
        }
    }
}
