//! L3 hit/miss latency composition over a NoC (Fig. 16).
//!
//! Directory-based router NoCs pay two network traversals per L3 hit
//! (request to the home slice, data response) and an extra traversal plus
//! DRAM on a miss. Snooping buses pay one arbitrated broadcast for the
//! request and one data transfer on the (already-directed) data wires.
//! Data responses carry a cache line, adding a serialization tail.

use cryowire_device::Temperature;
use cryowire_noc::{CryoBus, Network, NocKind, RouterClass, RouterNetwork, SharedBus};

use crate::hierarchy::MemoryDesign;

/// Coherence style implied by the NoC (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceStyle {
    /// Directory coherence over a router NoC; L3 slices keep directory
    /// state.
    Directory,
    /// Snooping over a shared bus.
    Snooping,
}

/// The NoC choices Fig. 16 compares.
#[derive(Debug, Clone)]
pub enum NocChoice {
    /// A router-based NoC with its clock frequency, GHz (Table 4: 4 GHz at
    /// 300 K, 5.44 GHz at 77 K).
    Router {
        /// The network.
        network: RouterNetwork,
        /// NoC clock, GHz.
        clock_ghz: f64,
    },
    /// A conventional or H-tree shared bus (4 GHz domain).
    Bus {
        /// The bus.
        bus: SharedBus,
    },
    /// The paper's CryoBus.
    CryoBus {
        /// The bus.
        bus: CryoBus,
    },
    /// The ideal zero-latency NoC used as Fig. 16's red dotted line and
    /// Fig. 17's normalization.
    Ideal,
}

impl NocChoice {
    /// The five standard Fig. 16 configurations at a temperature.
    #[must_use]
    pub fn standard_set(t: Temperature) -> Vec<NocChoice> {
        let clock = if t.is_cryogenic() { 5.44 } else { 4.0 };
        let mk = |kind| NocChoice::Router {
            network: RouterNetwork::new(kind, 64, RouterClass::OneCycle, t)
                .expect("64-core router networks are valid"),
            clock_ghz: clock,
        };
        vec![
            mk(NocKind::Mesh),
            mk(NocKind::FlattenedButterfly),
            mk(NocKind::CMesh),
            NocChoice::Bus {
                bus: SharedBus::new(64, t),
            },
            NocChoice::CryoBus {
                bus: CryoBus::new(64, t),
            },
        ]
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            NocChoice::Router { network, .. } => network.name(),
            NocChoice::Bus { bus } => bus.name(),
            NocChoice::CryoBus { bus } => bus.name(),
            NocChoice::Ideal => "Ideal (zero NoC)".to_string(),
        }
    }

    /// Coherence style (Table 4).
    #[must_use]
    pub fn coherence(&self) -> CoherenceStyle {
        match self {
            NocChoice::Router { .. } => CoherenceStyle::Directory,
            _ => CoherenceStyle::Snooping,
        }
    }

    /// Serialization tail of a cache-line data response, cycles
    /// (a 64 B line as 4 extra flits/beats behind the head).
    const DATA_TAIL_CYCLES: f64 = 4.0;

    /// One-way request latency, ns.
    #[must_use]
    pub fn request_latency_ns(&self) -> f64 {
        match self {
            NocChoice::Router { network, clock_ghz } => {
                network.average_zero_load_latency() / clock_ghz
            }
            NocChoice::Bus { bus } => bus.transaction_latency() as f64 / 4.0,
            NocChoice::CryoBus { bus } => bus.transaction_latency() as f64 / 4.0,
            NocChoice::Ideal => 0.0,
        }
    }

    /// Data-response latency, ns (head latency plus line serialization).
    #[must_use]
    pub fn response_latency_ns(&self) -> f64 {
        match self {
            NocChoice::Router { network, clock_ghz } => {
                (network.average_zero_load_latency() + Self::DATA_TAIL_CYCLES) / clock_ghz
            }
            // Data moves on the directed data wires: broadcast-span
            // traversal plus the line tail, no arbitration.
            NocChoice::Bus { bus } => {
                (bus.occupancy_cycles() as f64 + Self::DATA_TAIL_CYCLES) / 4.0
            }
            NocChoice::CryoBus { bus } => {
                (bus.occupancy_cycles() as f64 + Self::DATA_TAIL_CYCLES) / 4.0
            }
            NocChoice::Ideal => 0.0,
        }
    }

    /// Total NoC time on an L3 hit, ns.
    #[must_use]
    pub fn hit_noc_ns(&self) -> f64 {
        self.request_latency_ns() + self.response_latency_ns()
    }

    /// Total NoC time on an L3 miss, ns: the directory protocol adds a
    /// traversal to the memory controller; snooping already broadcast to
    /// everyone, so only the response path lengthens.
    #[must_use]
    pub fn miss_noc_ns(&self) -> f64 {
        match self.coherence() {
            CoherenceStyle::Directory => {
                self.request_latency_ns() * 2.0 + self.response_latency_ns()
            }
            CoherenceStyle::Snooping => self.request_latency_ns() + self.response_latency_ns(),
        }
    }
}

/// {NoC, cache, DRAM} decomposition of an access latency (Fig. 16's bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Time on the interconnect, ns.
    pub noc_ns: f64,
    /// Time in the cache arrays, ns.
    pub cache_ns: f64,
    /// Time in DRAM, ns.
    pub dram_ns: f64,
}

impl LatencyBreakdown {
    /// Total latency, ns.
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        self.noc_ns + self.cache_ns + self.dram_ns
    }

    /// NoC share of the total (0..1).
    #[must_use]
    pub fn noc_fraction(&self) -> f64 {
        self.noc_ns / self.total_ns()
    }
}

/// Composes a NoC choice and a memory design into L3 hit/miss breakdowns.
#[derive(Debug, Clone)]
pub struct LlcPathModel {
    noc: NocChoice,
    memory: MemoryDesign,
}

impl LlcPathModel {
    /// Creates the path model.
    #[must_use]
    pub fn new(noc: NocChoice, memory: MemoryDesign) -> Self {
        LlcPathModel { noc, memory }
    }

    /// The NoC choice.
    #[must_use]
    pub fn noc(&self) -> &NocChoice {
        &self.noc
    }

    /// L3 **hit** latency breakdown (Fig. 16a).
    #[must_use]
    pub fn hit_breakdown(&self) -> LatencyBreakdown {
        LatencyBreakdown {
            noc_ns: self.noc.hit_noc_ns(),
            cache_ns: self.memory.l3().latency_ns(),
            dram_ns: 0.0,
        }
    }

    /// L3 **miss** latency breakdown (Fig. 16b).
    #[must_use]
    pub fn miss_breakdown(&self) -> LatencyBreakdown {
        LatencyBreakdown {
            noc_ns: self.noc.miss_noc_ns(),
            cache_ns: self.memory.l3().latency_ns(),
            dram_ns: self.memory.dram_latency_ns(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t77() -> Temperature {
        Temperature::liquid_nitrogen()
    }
    fn t300() -> Temperature {
        Temperature::ambient()
    }

    fn mesh(t: Temperature) -> NocChoice {
        let clock = if t.is_cryogenic() { 5.44 } else { 4.0 };
        NocChoice::Router {
            network: RouterNetwork::mesh64(RouterClass::OneCycle, t),
            clock_ghz: clock,
        }
    }

    #[test]
    fn mesh_dominates_77k_hit_latency() {
        // Fig. 16: with 77 K Mesh, NoC takes up to ~71.7 % of the L3 hit
        // latency.
        let model = LlcPathModel::new(mesh(t77()), MemoryDesign::mem_77k());
        let frac = model.hit_breakdown().noc_fraction();
        assert!(
            frac > 0.55 && frac < 0.80,
            "77 K mesh hit NoC fraction = {frac}"
        );
    }

    #[test]
    fn mesh_77k_miss_noc_fraction() {
        // Fig. 16: ~40.4 % of the miss latency.
        let model = LlcPathModel::new(mesh(t77()), MemoryDesign::mem_77k());
        let frac = model.miss_breakdown().noc_fraction();
        assert!(
            frac > 0.25 && frac < 0.55,
            "77 K mesh miss NoC fraction = {frac}"
        );
    }

    #[test]
    fn bus_beats_mesh_at_77k() {
        // Guideline #1.
        let mesh_model = LlcPathModel::new(mesh(t77()), MemoryDesign::mem_77k());
        let bus_model = LlcPathModel::new(
            NocChoice::Bus {
                bus: SharedBus::new(64, t77()),
            },
            MemoryDesign::mem_77k(),
        );
        assert!(bus_model.hit_breakdown().total_ns() < mesh_model.hit_breakdown().total_ns());
        assert!(bus_model.miss_breakdown().total_ns() < mesh_model.miss_breakdown().total_ns());
    }

    #[test]
    fn bus_and_mesh_comparable_at_300k() {
        // Fig. 16: at 300 K the shared bus is comparable to router NoCs
        // (within ~2x either way).
        let mesh_model = LlcPathModel::new(mesh(t300()), MemoryDesign::mem_300k());
        let bus_model = LlcPathModel::new(
            NocChoice::Bus {
                bus: SharedBus::new(64, t300()),
            },
            MemoryDesign::mem_300k(),
        );
        let ratio = bus_model.hit_breakdown().total_ns() / mesh_model.hit_breakdown().total_ns();
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "300 K bus/mesh hit ratio = {ratio}"
        );
    }

    #[test]
    fn cryobus_nearest_to_ideal() {
        let mem = MemoryDesign::mem_77k();
        let ideal = LlcPathModel::new(NocChoice::Ideal, mem)
            .hit_breakdown()
            .total_ns();
        let cryo = LlcPathModel::new(
            NocChoice::CryoBus {
                bus: CryoBus::new(64, t77()),
            },
            mem,
        )
        .hit_breakdown()
        .total_ns();
        let mesh_total = LlcPathModel::new(mesh(t77()), mem)
            .hit_breakdown()
            .total_ns();
        assert!(cryo - ideal < mesh_total - ideal);
        assert!(
            cryo / ideal < 2.2,
            "CryoBus hit vs ideal = {}",
            cryo / ideal
        );
    }

    #[test]
    fn ideal_has_zero_noc() {
        let model = LlcPathModel::new(NocChoice::Ideal, MemoryDesign::mem_77k());
        assert_eq!(model.hit_breakdown().noc_ns, 0.0);
        assert!(model.miss_breakdown().noc_fraction() < 1e-12);
    }

    #[test]
    fn directory_miss_costs_more_noc_than_hit() {
        let model = LlcPathModel::new(mesh(t77()), MemoryDesign::mem_77k());
        assert!(model.miss_breakdown().noc_ns > model.hit_breakdown().noc_ns);
    }

    #[test]
    fn standard_set_has_five_nocs() {
        let set = NocChoice::standard_set(t77());
        assert_eq!(set.len(), 5);
        assert_eq!(set[0].coherence(), CoherenceStyle::Directory);
        assert_eq!(set[4].coherence(), CoherenceStyle::Snooping);
    }

    #[test]
    fn router_nocs_barely_improve_at_77k() {
        // Guideline #1's premise: mesh ns latency improves only via the
        // 4 → 5.44 GHz clock (~26 %), nowhere near the 3x wire speed-up.
        let hit300 = LlcPathModel::new(mesh(t300()), MemoryDesign::mem_300k())
            .hit_breakdown()
            .noc_ns;
        let hit77 = LlcPathModel::new(mesh(t77()), MemoryDesign::mem_77k())
            .hit_breakdown()
            .noc_ns;
        let gain = hit300 / hit77;
        assert!(gain < 1.6, "mesh NoC hit-latency gain at 77 K = {gain}");
    }
}
