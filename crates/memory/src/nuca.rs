//! NUCA bank-layout optimization — the CACTI-NUCA substitute
//! (Section 3.1.3).
//!
//! The paper derives its wire-link geometry by letting CACTI-NUCA pick the
//! optimal bank layout for the 64 MB shared L3 and reporting the resulting
//! link lengths (the ~6 mm CryoBus link of Fig. 10 and the 2 mm mesh hop
//! of Section 5.1). This module reproduces that derivation: given a total
//! capacity and a candidate bank-count set, it models per-bank access time
//! (growing with bank size) against network depth (growing with bank
//! count) and reports the optimum and its wire lengths.

use cryowire_device::{MosfetModel, RepeaterOptimizer, Temperature, Wire, WireClass};

/// One candidate NUCA organization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NucaCandidate {
    /// Number of banks (power of four for an H-tree reach).
    pub banks: usize,
    /// Per-bank capacity, KiB.
    pub bank_kib: usize,
    /// Bank access time, ns.
    pub bank_access_ns: f64,
    /// Link length between adjacent banks, µm.
    pub link_length_um: f64,
    /// Average network traversal to a bank, ns.
    pub avg_network_ns: f64,
    /// Average total access time, ns.
    pub total_ns: f64,
}

/// NUCA layout optimizer over a square die.
#[derive(Debug, Clone)]
pub struct NucaOptimizer {
    /// Total cache capacity, KiB.
    total_kib: usize,
    /// Die edge, mm (the 64-core die spans ~16 mm).
    die_edge_mm: f64,
    optimizer: RepeaterOptimizer,
}

impl NucaOptimizer {
    /// The paper's 64 MB shared L3 on the 16 mm die.
    #[must_use]
    pub fn l3_64mb() -> Self {
        NucaOptimizer {
            total_kib: 64 * 1024,
            die_edge_mm: 16.0,
            optimizer: RepeaterOptimizer::new(&MosfetModel::industry_45nm()),
        }
    }

    /// Custom capacity/die.
    #[must_use]
    pub fn new(total_kib: usize, die_edge_mm: f64) -> Self {
        NucaOptimizer {
            total_kib,
            die_edge_mm,
            optimizer: RepeaterOptimizer::new(&MosfetModel::industry_45nm()),
        }
    }

    /// Bank access time for a `kib`-KiB SRAM bank, ns (CACTI-flavoured
    /// sqrt scaling anchored at Table 4's 1 MiB slice = 10 cycles @4 GHz
    /// at 77 K, double at 300 K).
    #[must_use]
    pub fn bank_access_ns(&self, kib: usize, t: Temperature) -> f64 {
        let base = if t.is_cryogenic() { 2.5 } else { 5.0 }; // 1 MiB anchor
        base * (kib as f64 / 1_024.0).sqrt().max(0.2)
    }

    /// Evaluates one bank count at temperature `t`.
    #[must_use]
    pub fn evaluate(&self, banks: usize, t: Temperature) -> NucaCandidate {
        let bank_kib = self.total_kib / banks;
        let bank_access_ns = self.bank_access_ns(bank_kib, t);
        // Banks tile the die; adjacent-bank pitch:
        let pitch_mm = self.die_edge_mm / (banks as f64).sqrt();
        let link_length_um = pitch_mm * 1_000.0;
        // Average hops to a bank on the tiled grid ≈ 2/3 sqrt(banks).
        let avg_hops = (2.0 / 3.0) * (banks as f64).sqrt();
        let wire = Wire::new(WireClass::Global, link_length_um.max(100.0));
        // Each hop pays the wire plus a latch/switch stage (CACTI-NUCA's
        // per-hop router), one 4 GHz cycle.
        let per_hop_ns = self.optimizer.optimal_delay(&wire, t) / 1_000.0 + 0.25;
        let avg_network_ns = avg_hops * per_hop_ns;
        NucaCandidate {
            banks,
            bank_kib,
            bank_access_ns,
            link_length_um,
            avg_network_ns,
            total_ns: bank_access_ns + avg_network_ns,
        }
    }

    /// Finds the latency-optimal bank count among powers of four.
    #[must_use]
    pub fn optimize(&self, t: Temperature) -> NucaCandidate {
        [4usize, 16, 64, 256]
            .iter()
            .map(|&b| self.evaluate(b, t))
            .min_by(|a, b| a.total_ns.total_cmp(&b.total_ns))
            .expect("candidate set is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t77() -> Temperature {
        Temperature::liquid_nitrogen()
    }

    #[test]
    fn optimal_layout_has_moderate_bank_count() {
        // The access-time/network trade-off must produce an interior
        // optimum (neither 4 giant banks nor 256 tiny ones).
        let opt = NucaOptimizer::l3_64mb().optimize(t77());
        assert!(
            opt.banks == 16 || opt.banks == 64,
            "optimal bank count = {}",
            opt.banks
        );
    }

    #[test]
    fn link_lengths_bracket_the_paper_geometry() {
        // The paper's wire links: 2 mm mesh hops (64 banks) and the ~6 mm
        // H-tree segments (Fig. 10's validated link). Our tiling spans
        // that range.
        let nuca = NucaOptimizer::l3_64mb();
        let banks64 = nuca.evaluate(64, t77());
        assert!((banks64.link_length_um - 2_000.0).abs() < 1.0);
        let banks16 = nuca.evaluate(16, t77());
        assert!(banks16.link_length_um > 3_500.0 && banks16.link_length_um < 6_500.0);
    }

    #[test]
    fn bank_access_matches_table4_anchor() {
        let nuca = NucaOptimizer::l3_64mb();
        // 1 MiB slice: 2.5 ns at 77 K (10 cycles @ 4 GHz), 5 ns at 300 K.
        assert!((nuca.bank_access_ns(1_024, t77()) - 2.5).abs() < 1e-9);
        assert!((nuca.bank_access_ns(1_024, Temperature::ambient()) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cooling_shifts_the_optimum_toward_fewer_banks() {
        // Faster 77 K wires make network depth cheaper relative to bank
        // access, so the cold optimum never needs *more* banks than 300 K.
        let nuca = NucaOptimizer::l3_64mb();
        let cold = nuca.optimize(t77());
        let hot = nuca.optimize(Temperature::ambient());
        assert!(
            cold.banks <= hot.banks,
            "cold {} vs hot {}",
            cold.banks,
            hot.banks
        );
    }

    #[test]
    fn total_latency_improves_at_77k() {
        let nuca = NucaOptimizer::l3_64mb();
        assert!(nuca.optimize(t77()).total_ns < nuca.optimize(Temperature::ambient()).total_ns);
    }
}
