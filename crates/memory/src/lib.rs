//! # cryowire-memory
//!
//! Memory-hierarchy latency models for the CryoWire evaluation — the
//! CACTI-NUCA / CryoCache / CLL-DRAM substitute (Table 4, Fig. 16).
//!
//! The paper integrates previously-published 77 K-optimized caches and
//! DRAM: the 77 K memory provides twice-faster caches and 3.8x-faster
//! DRAM than the 300 K setup. This crate encodes those latencies and
//! composes them with the NoC models into the L3 hit/miss paths that
//! Fig. 16 decomposes.
//!
//! ```
//! use cryowire_memory::MemoryDesign;
//! let m300 = MemoryDesign::mem_300k();
//! let m77 = MemoryDesign::mem_77k();
//! assert!(m300.dram_latency_ns() / m77.dram_latency_ns() > 3.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coherence;
pub mod dram;
pub mod hierarchy;
pub mod llc_path;
pub mod nuca;

pub use coherence::{Access, CoherenceCost, DirectoryMesi, MesiState, SnoopingMesi};
pub use dram::DramTiming;
pub use hierarchy::{CacheLevelSpec, MemoryDesign};
pub use llc_path::{CoherenceStyle, LatencyBreakdown, LlcPathModel, NocChoice};
pub use nuca::{NucaCandidate, NucaOptimizer};
