//! MESI cache coherence: snooping-bus and directory implementations
//! (Table 4's two protocols).
//!
//! The system model charges a directory miss ~2.5–3.5 network traversals
//! and a snooping miss one bus transaction; this module implements both
//! protocols as real state machines and *measures* those counts, so the
//! constants are derived rather than asserted. Correctness is checked
//! with version numbers: every read must observe the latest committed
//! write, whatever the interleaving.
//!
//! States follow the classic MESI:
//!
//! * **M**odified — dirty, exclusive owner;
//! * **E**xclusive — clean, sole copy;
//! * **S**hared — clean, possibly replicated;
//! * **I**nvalid.

use std::collections::HashMap;

/// MESI line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Dirty exclusive.
    Modified,
    /// Clean exclusive.
    Exclusive,
    /// Clean shared.
    Shared,
    /// Not present.
    Invalid,
}

/// A processor-side access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Load from a line.
    Read,
    /// Store to a line.
    Write,
}

/// Cost of one coherence operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoherenceCost {
    /// Arbitrated bus transactions (snooping) — the contended resource.
    pub bus_transactions: u64,
    /// Point-to-point network messages (directory): request, forward,
    /// invalidations, acks, data.
    pub network_messages: u64,
    /// One-way network traversals on the critical path (directory).
    pub critical_traversals: u64,
    /// Lines invalidated in other caches.
    pub invalidations: u64,
}

/// A multi-core MESI system over a **snooping bus**: every miss or
/// upgrade broadcasts one arbitrated bus transaction that all caches
/// snoop.
#[derive(Debug, Clone)]
pub struct SnoopingMesi {
    cores: usize,
    /// Per-core: line → (state, observed version).
    caches: Vec<HashMap<u64, (MesiState, u64)>>,
    /// Memory's committed version per line.
    memory: HashMap<u64, u64>,
    /// Aggregate cost counters.
    total: CoherenceCost,
}

impl SnoopingMesi {
    /// Creates the system.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        SnoopingMesi {
            cores,
            caches: vec![HashMap::new(); cores],
            memory: HashMap::new(),
            total: CoherenceCost::default(),
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Aggregate cost so far.
    #[must_use]
    pub fn total_cost(&self) -> CoherenceCost {
        self.total
    }

    fn state(&self, core: usize, line: u64) -> MesiState {
        self.caches[core]
            .get(&line)
            .map_or(MesiState::Invalid, |&(s, _)| s)
    }

    /// Performs `access` by `core` on `line`; returns the per-op cost and
    /// the version observed (reads) or produced (writes).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, line: u64, access: Access) -> (CoherenceCost, u64) {
        assert!(core < self.cores, "core out of range");
        let mut cost = CoherenceCost::default();
        let here = self.state(core, line);

        let version = match (access, here) {
            // Read hit.
            (Access::Read, MesiState::Modified | MesiState::Exclusive | MesiState::Shared) => {
                self.caches[core][&line].1
            }
            // Read miss: BusRd. Owner (if any) supplies and demotes to S.
            (Access::Read, MesiState::Invalid) => {
                cost.bus_transactions += 1;
                let mut version = *self.memory.entry(line).or_insert(0);
                let mut shared = false;
                for other in 0..self.cores {
                    if other == core {
                        continue;
                    }
                    if let Some(&(s, v)) = self.caches[other].get(&line) {
                        match s {
                            MesiState::Modified => {
                                // Owner flushes; stays Shared.
                                version = v;
                                self.memory.insert(line, v);
                                self.caches[other].insert(line, (MesiState::Shared, v));
                                shared = true;
                            }
                            MesiState::Exclusive | MesiState::Shared => {
                                self.caches[other].insert(line, (MesiState::Shared, v));
                                shared = true;
                            }
                            MesiState::Invalid => {}
                        }
                    }
                }
                let new_state = if shared {
                    MesiState::Shared
                } else {
                    MesiState::Exclusive
                };
                self.caches[core].insert(line, (new_state, version));
                version
            }
            // Write hit in M or E: silent upgrade (E→M).
            (Access::Write, MesiState::Modified | MesiState::Exclusive) => {
                let v = self.caches[core][&line].1 + 1;
                self.caches[core].insert(line, (MesiState::Modified, v));
                v
            }
            // Write in S: BusUpgr invalidates the other sharers.
            (Access::Write, MesiState::Shared) => {
                cost.bus_transactions += 1;
                let v = self.caches[core][&line].1 + 1;
                for other in 0..self.cores {
                    if other != core && self.caches[other].contains_key(&line) {
                        if self.caches[other][&line].0 != MesiState::Invalid {
                            cost.invalidations += 1;
                        }
                        self.caches[other].remove(&line);
                    }
                }
                self.caches[core].insert(line, (MesiState::Modified, v));
                v
            }
            // Write miss: BusRdX.
            (Access::Write, MesiState::Invalid) => {
                cost.bus_transactions += 1;
                let mut version = *self.memory.entry(line).or_insert(0);
                for other in 0..self.cores {
                    if other == core {
                        continue;
                    }
                    if let Some(&(s, v)) = self.caches[other].get(&line) {
                        if s == MesiState::Modified {
                            version = v;
                        }
                        if s != MesiState::Invalid {
                            cost.invalidations += 1;
                        }
                        self.caches[other].remove(&line);
                    }
                }
                let v = version + 1;
                self.caches[core].insert(line, (MesiState::Modified, v));
                v
            }
        };

        self.total.bus_transactions += cost.bus_transactions;
        self.total.invalidations += cost.invalidations;
        (cost, version)
    }

    /// Checks the MESI single-writer invariant for `line`.
    #[must_use]
    pub fn invariant_holds(&self, line: u64) -> bool {
        let mut exclusive_like = 0;
        let mut present = 0;
        for cache in &self.caches {
            match cache.get(&line).map(|&(s, _)| s) {
                Some(MesiState::Modified | MesiState::Exclusive) => {
                    exclusive_like += 1;
                    present += 1;
                }
                Some(MesiState::Shared) => present += 1,
                _ => {}
            }
        }
        exclusive_like <= 1 && (exclusive_like == 0 || present == 1)
    }
}

/// Directory entry: who has the line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct DirEntry {
    owner: Option<usize>,
    sharers: Vec<usize>,
}

/// A multi-core MESI system under **directory coherence** (the mesh's
/// protocol): the home node tracks owner/sharers; misses cost one or more
/// one-way traversals on the critical path (request → home, forward →
/// owner, data → requester).
#[derive(Debug, Clone)]
pub struct DirectoryMesi {
    cores: usize,
    caches: Vec<HashMap<u64, (MesiState, u64)>>,
    directory: HashMap<u64, DirEntry>,
    memory: HashMap<u64, u64>,
    total: CoherenceCost,
}

impl DirectoryMesi {
    /// Creates the system.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        DirectoryMesi {
            cores,
            caches: vec![HashMap::new(); cores],
            directory: HashMap::new(),
            memory: HashMap::new(),
            total: CoherenceCost::default(),
        }
    }

    /// Aggregate cost so far.
    #[must_use]
    pub fn total_cost(&self) -> CoherenceCost {
        self.total
    }

    fn state(&self, core: usize, line: u64) -> MesiState {
        self.caches[core]
            .get(&line)
            .map_or(MesiState::Invalid, |&(s, _)| s)
    }

    /// Performs `access` by `core` on `line`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, line: u64, access: Access) -> (CoherenceCost, u64) {
        assert!(core < self.cores, "core out of range");
        let mut cost = CoherenceCost::default();
        let here = self.state(core, line);

        let version = match (access, here) {
            (Access::Read, MesiState::Modified | MesiState::Exclusive | MesiState::Shared) => {
                self.caches[core][&line].1
            }
            (Access::Read, MesiState::Invalid) => {
                let entry = self.directory.entry(line).or_default();
                // Request to home.
                cost.network_messages += 1;
                cost.critical_traversals += 1;
                let version = if let Some(owner) = entry.owner {
                    // Forward to owner, owner supplies, demote to S.
                    cost.network_messages += 2; // fwd + data
                    cost.critical_traversals += 2;
                    let (_, v) = self.caches[owner][&line];
                    self.caches[owner].insert(line, (MesiState::Shared, v));
                    entry.owner = None;
                    if !entry.sharers.contains(&owner) {
                        entry.sharers.push(owner);
                    }
                    self.memory.insert(line, v);
                    v
                } else {
                    // Home supplies data.
                    cost.network_messages += 1;
                    cost.critical_traversals += 1;
                    *self.memory.entry(line).or_insert(0)
                };
                let state = if self.directory[&line].sharers.is_empty() {
                    MesiState::Exclusive
                } else {
                    MesiState::Shared
                };
                let entry = self.directory.entry(line).or_default();
                if state == MesiState::Exclusive {
                    entry.owner = Some(core);
                } else if !entry.sharers.contains(&core) {
                    entry.sharers.push(core);
                }
                self.caches[core].insert(line, (state, version));
                version
            }
            (Access::Write, MesiState::Modified | MesiState::Exclusive) => {
                let v = self.caches[core][&line].1 + 1;
                self.caches[core].insert(line, (MesiState::Modified, v));
                let entry = self.directory.entry(line).or_default();
                entry.owner = Some(core);
                entry.sharers.retain(|&s| s == core);
                v
            }
            (Access::Write, MesiState::Shared | MesiState::Invalid) => {
                // Request to home; home invalidates sharers / forwards to
                // owner; acks; data (or upgrade ack) back.
                cost.network_messages += 1;
                cost.critical_traversals += 1;
                let entry = self.directory.entry(line).or_default();
                let mut version = *self.memory.entry(line).or_insert(0);
                if let Some(owner) = entry.owner.take() {
                    if owner != core {
                        cost.network_messages += 2;
                        cost.critical_traversals += 2;
                        let (_, v) = self.caches[owner][&line];
                        version = v;
                        self.caches[owner].remove(&line);
                        cost.invalidations += 1;
                    }
                }
                let entry = self.directory.entry(line).or_default();
                let sharers: Vec<usize> = entry.sharers.drain(..).collect();
                let mut invalidated = 0;
                for s in sharers {
                    if s != core {
                        if let Some((st, v)) = self.caches[s].remove(&line) {
                            if st != MesiState::Invalid {
                                invalidated += 1;
                                version = version.max(v);
                            }
                        }
                    }
                }
                if invalidated > 0 {
                    // Invalidations fan out in parallel; acks return:
                    // two traversals on the critical path, 2 messages per
                    // sharer.
                    cost.network_messages += 2 * invalidated;
                    cost.critical_traversals += 2;
                    cost.invalidations += invalidated;
                }
                // Data / upgrade ack to the requester.
                cost.network_messages += 1;
                cost.critical_traversals += 1;
                if here == MesiState::Shared {
                    version = self.caches[core][&line].1;
                }
                let v = version + 1;
                self.caches[core].insert(line, (MesiState::Modified, v));
                let entry = self.directory.entry(line).or_default();
                entry.owner = Some(core);
                v
            }
        };

        self.total.network_messages += cost.network_messages;
        self.total.critical_traversals += cost.critical_traversals;
        self.total.invalidations += cost.invalidations;
        (cost, version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn snooping_invariant_under_random_traffic() {
        let mut sys = SnoopingMesi::new(8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20_000 {
            let core = rng.gen_range(0..8);
            let line = rng.gen_range(0..32);
            let access = if rng.gen::<bool>() {
                Access::Read
            } else {
                Access::Write
            };
            sys.access(core, line, access);
            assert!(sys.invariant_holds(line));
        }
    }

    #[test]
    fn reads_observe_latest_write_snooping() {
        let mut sys = SnoopingMesi::new(4);
        let (_, v1) = sys.access(0, 7, Access::Write);
        let (_, v2) = sys.access(1, 7, Access::Read);
        assert_eq!(v1, v2, "remote read must see the write");
        let (_, v3) = sys.access(2, 7, Access::Write);
        assert_eq!(v3, v1 + 1);
        let (_, v4) = sys.access(0, 7, Access::Read);
        assert_eq!(v4, v3);
    }

    #[test]
    fn reads_observe_latest_write_directory() {
        let mut sys = DirectoryMesi::new(4);
        let (_, v1) = sys.access(0, 7, Access::Write);
        let (_, v2) = sys.access(1, 7, Access::Read);
        assert_eq!(v1, v2);
        let (_, v3) = sys.access(2, 7, Access::Write);
        assert_eq!(v3, v1 + 1);
        let (_, v4) = sys.access(3, 7, Access::Read);
        assert_eq!(v4, v3);
    }

    #[test]
    fn protocols_agree_on_versions() {
        // Same access sequence → identical observed versions.
        let mut snoop = SnoopingMesi::new(8);
        let mut dir = DirectoryMesi::new(8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let core = rng.gen_range(0..8);
            let line = rng.gen_range(0..16);
            let access = if rng.gen::<f64>() < 0.6 {
                Access::Read
            } else {
                Access::Write
            };
            let (_, vs) = snoop.access(core, line, access);
            let (_, vd) = dir.access(core, line, access);
            assert_eq!(vs, vd, "protocols diverged");
        }
    }

    #[test]
    fn snooping_miss_costs_one_bus_transaction() {
        let mut sys = SnoopingMesi::new(4);
        let (c, _) = sys.access(0, 1, Access::Read);
        assert_eq!(c.bus_transactions, 1);
        // Hit: free.
        let (c, _) = sys.access(0, 1, Access::Read);
        assert_eq!(c.bus_transactions, 0);
        // E→M upgrade: silent.
        let (c, _) = sys.access(0, 1, Access::Write);
        assert_eq!(c.bus_transactions, 0);
    }

    #[test]
    fn directory_three_hop_forwarding() {
        // Remote-M read: request → home, forward → owner, data →
        // requester = 3 critical traversals (the system model's premise).
        let mut sys = DirectoryMesi::new(4);
        sys.access(0, 9, Access::Write);
        let (c, _) = sys.access(1, 9, Access::Read);
        assert_eq!(c.critical_traversals, 3);
    }

    #[test]
    fn directory_clean_read_is_two_hops() {
        let mut sys = DirectoryMesi::new(4);
        let (c, _) = sys.access(0, 5, Access::Read);
        assert_eq!(c.critical_traversals, 2); // request + data from home
    }

    #[test]
    fn ping_pong_is_cheaper_on_the_snooping_bus() {
        // A barrier/lock line bouncing between two writers: the snooping
        // protocol pays one transaction per bounce, the directory pays a
        // multi-hop invalidate+fetch chain — the asymmetry behind
        // streamcluster's CryoBus win.
        let mut snoop = SnoopingMesi::new(8);
        let mut dir = DirectoryMesi::new(8);
        let mut snoop_xacts = 0;
        let mut dir_traversals = 0;
        for i in 0..100 {
            let core = i % 2;
            let (cs, _) = snoop.access(core, 42, Access::Write);
            let (cd, _) = dir.access(core, 42, Access::Write);
            snoop_xacts += cs.bus_transactions;
            dir_traversals += cd.critical_traversals;
        }
        assert!(
            dir_traversals > 3 * snoop_xacts,
            "directory {dir_traversals} traversals vs snooping {snoop_xacts} transactions"
        );
    }

    #[test]
    fn measured_traversals_match_system_model_constants() {
        // Random sharing traffic: average directory critical traversals
        // per miss should land near the system model's 2.5–3.5 window.
        let mut dir = DirectoryMesi::new(16);
        let mut rng = StdRng::seed_from_u64(9);
        let mut traversals = 0u64;
        let mut misses = 0u64;
        for _ in 0..30_000 {
            let core = rng.gen_range(0..16);
            let line = rng.gen_range(0..64);
            let access = if rng.gen::<f64>() < 0.7 {
                Access::Read
            } else {
                Access::Write
            };
            let (c, _) = dir.access(core, line, access);
            if c.critical_traversals > 0 {
                traversals += c.critical_traversals;
                misses += 1;
            }
        }
        let avg = traversals as f64 / misses as f64;
        assert!(
            avg > 2.0 && avg < 4.0,
            "avg directory traversals per miss = {avg}"
        );
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut sys = SnoopingMesi::new(8);
        for core in 0..8 {
            sys.access(core, 3, Access::Read);
        }
        let (c, _) = sys.access(0, 3, Access::Write);
        assert_eq!(c.invalidations, 7);
        assert!(sys.invariant_holds(3));
    }
}
