//! DRAM timing at 300 K and 77 K — the DDR4 / CLL-DRAM substitute.
//!
//! Table 4 quotes 60.32 ns random-access latency for DDR4-2400 and
//! 15.84 ns for the cryogenic CLL-DRAM of Lee et al. (ISCA'19). This
//! module derives those from component timings: a random access pays
//! precharge (tRP) + activate (tRCD) + column access (tCAS) + burst, and
//! cooling shrinks the array/wire-dominated components while the
//! exponentially-slowed charge leakage lets refresh be turned off
//! entirely (CryoGuard: near refresh-free operation), removing the
//! refresh-blocking overhead from the average.

use cryowire_device::Temperature;

/// Component timings of a DRAM device, ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Precharge, ns.
    pub t_rp: f64,
    /// Activate (row to column delay), ns.
    pub t_rcd: f64,
    /// Column access strobe, ns.
    pub t_cas: f64,
    /// Data burst, ns.
    pub t_burst: f64,
    /// Refresh interval (tREFI), ns; `None` means refresh-free.
    pub t_refi: Option<f64>,
    /// Refresh cycle time (tRFC), ns.
    pub t_rfc: f64,
    /// Memory-controller and PHY overhead per request, ns (queuing,
    /// command serialization, channel crossing).
    pub t_controller: f64,
}

impl DramTiming {
    /// DDR4-2400 at 300 K (CL17-class part).
    #[must_use]
    pub fn ddr4_2400() -> Self {
        DramTiming {
            t_rp: 14.16,
            t_rcd: 14.16,
            t_cas: 14.16,
            t_burst: 3.33,
            t_refi: Some(7_800.0),
            t_rfc: 350.0,
            t_controller: 6.66,
        }
    }

    /// CLL-DRAM at 77 K: array access dominated by wordline/bitline RC,
    /// which collapses with the wires; sense margins improve; refresh is
    /// eliminated (retention grows beyond practical workloads at 77 K).
    #[must_use]
    pub fn cll_dram_77k() -> Self {
        DramTiming {
            t_rp: 3.7,
            t_rcd: 3.7,
            t_cas: 3.7,
            t_burst: 3.33,
            t_refi: None,
            t_rfc: 0.0,
            // The controller sits in the same LN bath: its wire-heavy
            // command/data paths ride the cryogenic speed-up.
            t_controller: 1.41,
        }
    }

    /// The timing set for temperature `t` (the two published points;
    /// callers interpolate via [`crate::hierarchy::MemoryDesign`]).
    #[must_use]
    pub fn at(t: Temperature) -> Self {
        if t.is_cryogenic() {
            DramTiming::cll_dram_77k()
        } else {
            DramTiming::ddr4_2400()
        }
    }

    /// Closed-bank random access latency:
    /// controller + tRP + tRCD + tCAS + burst.
    #[must_use]
    pub fn random_access_ns(&self) -> f64 {
        self.t_controller + self.t_rp + self.t_rcd + self.t_cas + self.t_burst
    }

    /// Open-row hit latency: controller + tCAS + burst.
    #[must_use]
    pub fn row_hit_ns(&self) -> f64 {
        self.t_controller + self.t_cas + self.t_burst
    }

    /// Fraction of time the device is blocked refreshing
    /// (tRFC / tREFI; zero when refresh-free).
    #[must_use]
    pub fn refresh_overhead(&self) -> f64 {
        match self.t_refi {
            Some(refi) => self.t_rfc / refi,
            None => 0.0,
        }
    }

    /// Average random-access latency including refresh blocking.
    #[must_use]
    pub fn effective_random_access_ns(&self) -> f64 {
        // A request arriving during a refresh waits half of tRFC on
        // average, weighted by the blocked-time fraction.
        self.random_access_ns() + self.refresh_overhead() * self.t_rfc / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_300k_latency() {
        // Table 4: 60.32 ns DDR4-2400 random access.
        let d = DramTiming::ddr4_2400();
        assert!(
            (d.effective_random_access_ns() - 60.32).abs() < 0.5,
            "DDR4 effective latency = {}",
            d.effective_random_access_ns()
        );
    }

    #[test]
    fn table4_77k_latency() {
        // Table 4: 15.84 ns CLL-DRAM.
        let d = DramTiming::cll_dram_77k();
        assert!(
            (d.effective_random_access_ns() - 15.84).abs() < 0.5,
            "CLL-DRAM latency = {}",
            d.effective_random_access_ns()
        );
    }

    #[test]
    fn paper_anchor_3_8x_dram_speedup() {
        let hot = DramTiming::ddr4_2400().effective_random_access_ns();
        let cold = DramTiming::cll_dram_77k().effective_random_access_ns();
        let ratio = hot / cold;
        assert!((ratio - 3.8).abs() < 0.4, "DRAM speed-up = {ratio}");
    }

    #[test]
    fn cryogenic_dram_is_refresh_free() {
        // CryoGuard / Rambus: retention at 77 K makes refresh negligible.
        assert_eq!(DramTiming::cll_dram_77k().refresh_overhead(), 0.0);
        assert!(DramTiming::ddr4_2400().refresh_overhead() > 0.02);
    }

    #[test]
    fn row_hits_are_cheaper() {
        for d in [DramTiming::ddr4_2400(), DramTiming::cll_dram_77k()] {
            assert!(d.row_hit_ns() < d.random_access_ns());
        }
    }

    #[test]
    fn selection_by_temperature() {
        assert_eq!(
            DramTiming::at(Temperature::liquid_nitrogen()),
            DramTiming::cll_dram_77k()
        );
        assert_eq!(
            DramTiming::at(Temperature::ambient()),
            DramTiming::ddr4_2400()
        );
    }
}
