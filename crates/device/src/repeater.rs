//! Latency-optimal repeater insertion (Section 2.3's "latency-optimizing
//! manner").
//!
//! For `k` repeaters of size `h` splitting a wire of length `L` into equal
//! segments, each segment's Elmore delay is
//!
//! `t_seg = 0.69·(R0/h)·(h·Cp + c·l + h·C0) + r·l·(0.38·c·l + 0.69·h·C0)`
//!
//! with `l = L/k`. The optimizer searches over the integer repeater count
//! (including `k = 0`, the unrepeated wire) and sizes each candidate with
//! the closed-form optimum `h* = sqrt(R0·c / (r·C0))`, then refines with a
//! local golden-section polish. Re-optimization happens independently at
//! every temperature — cooling changes both `r` and the repeater devices,
//! so the 77 K-optimal design differs from the 300 K one.

use crate::mosfet::{GateStyle, MosfetModel};
use crate::resistivity::ResistivityModel;
use crate::temperature::Temperature;
use crate::wire::Wire;

/// A concrete repeater insertion for one wire at one temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeaterDesign {
    /// Number of repeaters (0 means the unrepeated wire won).
    pub count: usize,
    /// Repeater size as a multiple of the minimum inverter.
    pub size: f64,
    /// End-to-end delay, ps.
    pub delay_ps: f64,
}

/// Repeater-insertion optimizer bound to a MOSFET and resistivity model.
///
/// ```
/// use cryowire_device::{MosfetModel, RepeaterOptimizer, Temperature, Wire, WireClass};
/// let mosfet = MosfetModel::industry_45nm();
/// let opt = RepeaterOptimizer::new(&mosfet);
/// let wire = Wire::new(WireClass::SemiGlobal, 900.0);
/// let design = opt.optimize(&wire, Temperature::ambient());
/// assert!(design.delay_ps > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RepeaterOptimizer {
    mosfet: MosfetModel,
    rho: ResistivityModel,
    max_repeaters: usize,
}

impl RepeaterOptimizer {
    /// Creates an optimizer using the default Intel-45 nm resistivity model.
    #[must_use]
    pub fn new(mosfet: &MosfetModel) -> Self {
        RepeaterOptimizer {
            mosfet: mosfet.clone(),
            rho: ResistivityModel::intel_45nm(),
            max_repeaters: 128,
        }
    }

    /// Replaces the resistivity model.
    #[must_use]
    pub fn with_resistivity(mut self, rho: ResistivityModel) -> Self {
        self.rho = rho;
        self
    }

    /// Finds the latency-optimal repeater design for `wire` at `t`.
    #[must_use]
    pub fn optimize(&self, wire: &Wire, t: Temperature) -> RepeaterDesign {
        // k = 0: the unrepeated wire with its default driver.
        let mut best = RepeaterDesign {
            count: 0,
            size: wire.geometry().default_driver_size,
            delay_ps: wire.unrepeated_delay_ps(&self.mosfet, &self.rho, t),
        };

        let ion = self
            .mosfet
            .nominal_state(GateStyle::Repeater, t)
            .expect("nominal point feasible")
            .on_current_factor;
        let r0 = self.mosfet.r0_ohm() / ion;
        let c0 = self.mosfet.c0_farad();
        let cp = self.mosfet.cp_farad();
        let r = wire.resistance_per_um(&self.rho, t);
        let c = wire.cap_per_um();
        let c_load = wire.geometry().default_load_ff * 1e-15;

        // Closed-form size optimum (independent of k for this delay form).
        let h_star = (r0 * c / (r * c0)).sqrt().max(1.0);

        for k in 1..=self.max_repeaters {
            // Polish h around the analytic optimum.
            let h = golden_min(
                |h| segment_delay_s(k, h, wire.length_um(), r0, c0, cp, r, c, c_load),
                (h_star / 4.0).max(1.0),
                h_star * 4.0,
            );
            let delay_s = segment_delay_s(k, h, wire.length_um(), r0, c0, cp, r, c, c_load);
            let delay_ps = delay_s * 1e12;
            if delay_ps < best.delay_ps {
                best = RepeaterDesign {
                    count: k,
                    size: h,
                    delay_ps,
                };
            }
        }
        best
    }

    /// Optimal end-to-end delay of `wire` at `t`, ps.
    #[must_use]
    pub fn optimal_delay(&self, wire: &Wire, t: Temperature) -> f64 {
        self.optimize(wire, t).delay_ps
    }

    /// Speed-up of the re-optimized wire at `t` relative to the 300 K
    /// optimum (the Fig. 5b quantity).
    #[must_use]
    pub fn speedup(&self, wire: &Wire, t: Temperature) -> f64 {
        self.optimal_delay(wire, Temperature::ambient()) / self.optimal_delay(wire, t)
    }
}

/// Total delay (seconds) of `k` equal segments driven by size-`h`
/// repeaters, plus the receiver load on the final segment.
#[allow(clippy::too_many_arguments)]
fn segment_delay_s(
    k: usize,
    h: f64,
    length_um: f64,
    r0: f64,
    c0: f64,
    cp: f64,
    r: f64,
    c: f64,
    c_load: f64,
) -> f64 {
    let l = length_um / k as f64;
    let rd = r0 / h;
    let seg = 0.69 * rd * (h * cp + c * l + h * c0) + r * l * (0.38 * c * l + 0.69 * h * c0);
    k as f64 * seg + (0.69 * rd + 0.69 * r * l) * c_load
}

/// Golden-section minimizer on `[a, b]` (unimodal objective).
fn golden_min(f: impl Fn(f64) -> f64, mut a: f64, mut b: f64) -> f64 {
    const PHI: f64 = 0.618_033_988_749_894_8;
    let mut x1 = b - PHI * (b - a);
    let mut x2 = a + PHI * (b - a);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..60 {
        if f1 < f2 {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - PHI * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + PHI * (b - a);
            f2 = f(x2);
        }
    }
    (a + b) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib;
    use crate::wire::WireClass;

    fn opt() -> RepeaterOptimizer {
        RepeaterOptimizer::new(&MosfetModel::industry_45nm())
    }

    #[test]
    fn repeaters_help_long_wires() {
        let o = opt();
        let wire = Wire::new(WireClass::Global, 10_000.0);
        let design = o.optimize(&wire, Temperature::ambient());
        assert!(design.count >= 1, "10 mm global wire should be repeated");
        assert!(
            design.delay_ps
                < wire.unrepeated_delay_ps(
                    &MosfetModel::industry_45nm(),
                    &ResistivityModel::intel_45nm(),
                    Temperature::ambient()
                )
        );
    }

    #[test]
    fn short_wires_stay_unrepeated() {
        let o = opt();
        let wire = Wire::new(WireClass::Local, 10.0);
        let design = o.optimize(&wire, Temperature::ambient());
        assert_eq!(design.count, 0, "10 µm local wire needs no repeaters");
    }

    #[test]
    fn fewer_repeaters_needed_at_77k() {
        // Lower wire resistance pushes the optimal repeater count down.
        let o = opt();
        let wire = Wire::new(WireClass::Global, 10_000.0);
        let d300 = o.optimize(&wire, Temperature::ambient());
        let d77 = o.optimize(&wire, Temperature::liquid_nitrogen());
        assert!(
            d77.count <= d300.count,
            "77 K should not need more repeaters ({} vs {})",
            d77.count,
            d300.count
        );
    }

    #[test]
    fn fig5b_semi_global_repeated_speedup() {
        // Paper Fig. 5b: 900 µm repeated semi-global wire speeds up ~2.25x.
        let o = opt();
        let wire = Wire::new(WireClass::SemiGlobal, calib::AVG_SEMI_GLOBAL_LENGTH_UM);
        let s = o.speedup(&wire, Temperature::liquid_nitrogen());
        assert!(
            (s - 2.25).abs() < 0.25,
            "repeated semi-global speedup = {s}, paper 2.25"
        );
    }

    #[test]
    fn fig5b_global_repeated_speedup() {
        // Paper Fig. 5b: 6.22 mm repeated global wire speeds up ~3.38x.
        // Our analytic model lands near 3.2 (sqrt(r_ratio × device_ratio)).
        let o = opt();
        let wire = Wire::new(WireClass::Global, calib::AVG_GLOBAL_LENGTH_UM);
        let s = o.speedup(&wire, Temperature::liquid_nitrogen());
        assert!(
            s > 2.9 && s < 3.6,
            "repeated global speedup = {s}, paper 3.38"
        );
    }

    #[test]
    fn fig10_wire_link_speedup() {
        // Paper Fig. 10: the 6 mm CryoBus wire link becomes 3.05x faster at
        // 77 K (validated against Hspice with 1.6 % error).
        let o = opt();
        let wire = Wire::new(WireClass::Global, 6_000.0);
        let s = o.speedup(&wire, Temperature::liquid_nitrogen());
        assert!(
            (s - 3.05).abs() < 0.35,
            "6 mm link speedup = {s}, paper 3.05"
        );
    }

    #[test]
    fn optimized_delay_monotone_in_temperature() {
        let o = opt();
        let wire = Wire::new(WireClass::Global, 6_000.0);
        let mut last = f64::INFINITY;
        for k in [300.0, 200.0, 135.0, 100.0, 77.0] {
            let d = o.optimal_delay(&wire, Temperature::new(k).unwrap());
            assert!(d < last, "optimal delay must fall with T");
            last = d;
        }
    }
}
