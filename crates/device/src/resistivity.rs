//! Temperature-dependent copper resistivity.
//!
//! The model follows the structure the paper relies on (Section 2.3): the
//! phonon-limited component of copper resistivity falls steeply with
//! temperature (Matula 1979), while size/grain-boundary scattering in thin
//! damascene wires contributes a temperature-*independent* floor
//! (Plombon 2006). Thick global wires therefore enjoy a much larger 77 K
//! speed-up than thin local wires — the asymmetry that drives the whole
//! CryoWire design space.

use crate::calib;
use crate::temperature::Temperature;
use crate::wire::WireClass;

/// Copper resistivity model: reduced Bloch–Grüneisen phonon term plus a
/// per-wire-class temperature-independent scattering floor.
///
/// ```
/// use cryowire_device::{ResistivityModel, Temperature, WireClass};
/// let model = ResistivityModel::intel_45nm();
/// let rho300 = model.resistivity(WireClass::Global, Temperature::ambient());
/// let rho77 = model.resistivity(WireClass::Global, Temperature::liquid_nitrogen());
/// assert!(rho300 / rho77 > 6.0); // thick wires approach bulk behaviour
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResistivityModel {
    /// Phonon resistivity at 300 K, µΩ·cm.
    rho_phonon_300: f64,
    /// Bulk residual resistivity (impurities), µΩ·cm.
    rho_residual: f64,
    /// Debye temperature, K.
    debye_k: f64,
    /// Per-class size/grain scattering floors, µΩ·cm,
    /// indexed by [`WireClass`] discriminant order (local, semi-global, global).
    rho_size: [f64; 3],
}

impl ResistivityModel {
    /// The model calibrated against the Intel 45 nm measurements the paper
    /// uses (Mistry 2007, Plombon 2006) so that the Fig. 5 wire speed-ups
    /// are reproduced.
    #[must_use]
    pub fn intel_45nm() -> Self {
        ResistivityModel {
            rho_phonon_300: calib::RHO_PHONON_300K,
            rho_residual: calib::RHO_RESIDUAL_BULK,
            debye_k: calib::COPPER_DEBYE_K,
            rho_size: [
                calib::RHO_SIZE_LOCAL,
                calib::RHO_SIZE_SEMI_GLOBAL,
                calib::RHO_SIZE_GLOBAL,
            ],
        }
    }

    /// Builds a model with custom scattering floors (e.g. to explore the
    /// "draw the target wires thicker" mitigation of Section 7.5).
    #[must_use]
    pub fn with_size_floors(mut self, local: f64, semi_global: f64, global: f64) -> Self {
        self.rho_size = [local, semi_global, global];
        self
    }

    /// Phonon-limited resistivity at temperature `t`, µΩ·cm.
    ///
    /// Uses the Bloch–Grüneisen form with n = 5, normalized so the 300 K
    /// value equals the calibrated `rho_phonon_300`.
    #[must_use]
    pub fn phonon_resistivity(&self, t: Temperature) -> f64 {
        let g300 = bloch_gruneisen(300.0, self.debye_k);
        self.rho_phonon_300 * bloch_gruneisen(t.kelvin(), self.debye_k) / g300
    }

    /// Total effective resistivity of `class` wires at temperature `t`,
    /// in µΩ·cm.
    #[must_use]
    pub fn resistivity(&self, class: WireClass, t: Temperature) -> f64 {
        self.phonon_resistivity(t) + self.rho_residual + self.rho_size[class as usize]
    }

    /// Resistance ratio `rho(300 K) / rho(t)` for `class` wires — the
    /// asymptotic speed-up of a long unrepeated wire.
    #[must_use]
    pub fn speedup(&self, class: WireClass, t: Temperature) -> f64 {
        self.resistivity(class, Temperature::ambient()) / self.resistivity(class, t)
    }
}

impl Default for ResistivityModel {
    fn default() -> Self {
        ResistivityModel::intel_45nm()
    }
}

/// Reduced Bloch–Grüneisen phonon-resistivity integral (n = 5),
/// ρ ∝ (T/Θ)^5 ∫₀^{Θ/T} x⁵ / ((eˣ−1)(1−e⁻ˣ)) dx,
/// evaluated by composite Simpson quadrature.
fn bloch_gruneisen(t_kelvin: f64, debye_k: f64) -> f64 {
    let z = debye_k / t_kelvin;
    let integral = simpson(bg_integrand, 0.0, z, 400);
    (t_kelvin / debye_k).powi(5) * integral
}

fn bg_integrand(x: f64) -> f64 {
    if x < 1e-9 {
        // x^5 / ((e^x - 1)(1 - e^-x)) → x^3 as x → 0
        return x.powi(3);
    }
    let ex = x.exp();
    x.powi(5) / ((ex - 1.0) * (1.0 - 1.0 / ex))
}

fn simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    // n must be even; round up if needed.
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        sum += if i % 2 == 1 { 4.0 * f(x) } else { 2.0 * f(x) };
    }
    sum * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: f64) -> Temperature {
        Temperature::new(k).unwrap()
    }

    #[test]
    fn bulk_copper_300k_value() {
        let m = ResistivityModel::intel_45nm();
        // Bulk (phonon + residual) should be near the canonical 1.7 µΩ·cm.
        let bulk = m.phonon_resistivity(Temperature::ambient()) + calib::RHO_RESIDUAL_BULK;
        assert!((bulk - 1.55).abs() < 0.1, "bulk rho300 = {bulk}");
    }

    #[test]
    fn bulk_copper_77k_value() {
        let m = ResistivityModel::intel_45nm();
        // Matula: bulk copper ~0.2 µΩ·cm at 77 K.
        let p77 = m.phonon_resistivity(Temperature::liquid_nitrogen());
        assert!(p77 > 0.12 && p77 < 0.28, "phonon rho77 = {p77}");
    }

    #[test]
    fn resistivity_monotone_in_temperature() {
        let m = ResistivityModel::intel_45nm();
        for class in [WireClass::Local, WireClass::SemiGlobal, WireClass::Global] {
            let mut last = 0.0;
            for k in [77.0, 100.0, 135.0, 200.0, 300.0, 400.0] {
                let rho = m.resistivity(class, t(k));
                assert!(rho > last, "rho must increase with T");
                last = rho;
            }
        }
    }

    #[test]
    fn class_speedups_ordered_by_thickness() {
        // Thicker wires (less size scattering) speed up more when cooled.
        let m = ResistivityModel::intel_45nm();
        let t77 = Temperature::liquid_nitrogen();
        let local = m.speedup(WireClass::Local, t77);
        let semi = m.speedup(WireClass::SemiGlobal, t77);
        let global = m.speedup(WireClass::Global, t77);
        assert!(local < semi && semi < global, "{local} {semi} {global}");
    }

    #[test]
    fn paper_anchor_local_speedup() {
        // Fig. 5a: long local wires speed up by ~2.95x at 77 K.
        let m = ResistivityModel::intel_45nm();
        let s = m.speedup(WireClass::Local, Temperature::liquid_nitrogen());
        assert!((s - 3.0).abs() < 0.25, "local asymptotic speedup = {s}");
    }

    #[test]
    fn paper_anchor_semi_global_speedup() {
        // Fig. 5a: long semi-global wires speed up by ~3.69x at 77 K.
        let m = ResistivityModel::intel_45nm();
        let s = m.speedup(WireClass::SemiGlobal, Temperature::liquid_nitrogen());
        assert!(
            (s - 3.75).abs() < 0.3,
            "semi-global asymptotic speedup = {s}"
        );
    }

    #[test]
    fn global_wires_approach_bulk_ratio() {
        let m = ResistivityModel::intel_45nm();
        let s = m.speedup(WireClass::Global, Temperature::liquid_nitrogen());
        assert!(s > 6.0 && s < 9.5, "global asymptotic speedup = {s}");
    }

    #[test]
    fn thicker_floors_raise_speedup() {
        // Section 7.5: drawing target wires thicker preserves the cryo benefit.
        let thin = ResistivityModel::intel_45nm();
        let thick = ResistivityModel::intel_45nm().with_size_floors(0.2, 0.1, 0.001);
        let t77 = Temperature::liquid_nitrogen();
        assert!(thick.speedup(WireClass::Local, t77) > thin.speedup(WireClass::Local, t77));
    }
}
