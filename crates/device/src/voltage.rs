//! V_dd / V_th scaling at cryogenic temperatures (Section 4.5).
//!
//! At 77 K the collapsed leakage allows lowering both the supply and
//! threshold voltages. [`VoltageOptimizer`] reproduces the paper's
//! derivation of CHP-core and CryoSP: maximize clock frequency subject to a
//! total-power budget (device + cryo-cooling) relative to the 300 K
//! baseline.

use crate::cooling::CoolingModel;
use crate::error::DeviceError;
use crate::mosfet::MosfetModel;
use crate::temperature::Temperature;

/// A (V_dd, V_th) pair, with V_th as seen at the operating temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage, volts.
    pub v_dd: f64,
    /// Threshold voltage at the operating temperature, volts.
    pub v_th: f64,
}

impl OperatingPoint {
    /// The 300 K baseline point (Table 3): 1.25 V / 0.47 V.
    #[must_use]
    pub fn baseline_300k() -> Self {
        OperatingPoint {
            v_dd: crate::calib::VDD_300K_BASELINE,
            v_th: crate::calib::VTH_300K_BASELINE,
        }
    }

    /// CryoSP's published point (Table 3): 0.64 V / 0.25 V.
    #[must_use]
    pub fn cryosp() -> Self {
        OperatingPoint {
            v_dd: crate::calib::VDD_CRYOSP,
            v_th: crate::calib::VTH_CRYOSP,
        }
    }

    /// CHP-core's published point (Table 3): 0.75 V / 0.25 V.
    #[must_use]
    pub fn chp_core() -> Self {
        OperatingPoint {
            v_dd: crate::calib::VDD_CHP,
            v_th: crate::calib::VTH_CHP,
        }
    }

    /// The 77 K NoC/LLC shared domain (Table 4): 0.55 V / 0.225 V.
    #[must_use]
    pub fn noc_77k() -> Self {
        OperatingPoint {
            v_dd: crate::calib::VDD_NOC_77K,
            v_th: crate::calib::VTH_NOC_77K,
        }
    }
}

/// Outcome of evaluating or optimizing a voltage point at a temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageScalingResult {
    /// The chosen operating point.
    pub point: OperatingPoint,
    /// Clock-frequency factor relative to the 300 K nominal baseline.
    pub frequency_factor: f64,
    /// Device power relative to the 300 K baseline device power.
    pub device_power_factor: f64,
    /// Total power (device + cooling) relative to the 300 K baseline
    /// device power.
    pub total_power_factor: f64,
}

/// Maximizes frequency under a total-power budget by grid search over
/// (V_dd, V_th), using the compact MOSFET model for delay and power.
///
/// The device power model splits the 300 K baseline into a dynamic and a
/// static fraction (McPAT-era server cores are roughly 70 / 30); dynamic
/// power scales as `C·V²·f` and static as `V·I_leak(T, V_th)`.
#[derive(Debug, Clone)]
pub struct VoltageOptimizer {
    mosfet: MosfetModel,
    cooling: CoolingModel,
    /// Fraction of 300 K baseline device power that is dynamic.
    dynamic_fraction: f64,
    /// Activity/capacitance factor relative to baseline (e.g. a halved-width
    /// CryoCore pipeline has a smaller switched capacitance).
    capacitance_factor: f64,
}

impl VoltageOptimizer {
    /// Creates an optimizer with the paper's default cooling model and a
    /// 70/30 dynamic/static power split.
    #[must_use]
    pub fn new(mosfet: &MosfetModel) -> Self {
        VoltageOptimizer {
            mosfet: mosfet.clone(),
            cooling: CoolingModel::paper_default(),
            dynamic_fraction: 0.7,
            capacitance_factor: 1.0,
        }
    }

    /// Sets the switched-capacitance factor (e.g. 0.35 for the halved
    /// CryoCore microarchitecture).
    #[must_use]
    pub fn with_capacitance_factor(mut self, factor: f64) -> Self {
        self.capacitance_factor = factor;
        self
    }

    /// Replaces the cooling model.
    #[must_use]
    pub fn with_cooling(mut self, cooling: CoolingModel) -> Self {
        self.cooling = cooling;
        self
    }

    /// Evaluates a specific operating point at `t`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidVoltage`] for infeasible points.
    pub fn evaluate(
        &self,
        point: OperatingPoint,
        t: Temperature,
    ) -> Result<VoltageScalingResult, DeviceError> {
        let state = self.mosfet.state(t, point.v_dd, point.v_th)?;
        let freq = 1.0 / state.delay_factor;
        let dynamic =
            self.dynamic_fraction * self.capacitance_factor * state.dynamic_energy_factor * freq;
        let static_p = (1.0 - self.dynamic_fraction)
            * self.capacitance_factor
            * state.leakage_factor
            * (point.v_dd / self.mosfet.v_dd_nominal());
        let device = dynamic + static_p;
        let total = device * self.cooling.total_power_multiplier(t);
        Ok(VoltageScalingResult {
            point,
            frequency_factor: freq,
            device_power_factor: device,
            total_power_factor: total,
        })
    }

    /// Finds the frequency-maximal feasible point at `t` with total power
    /// (device + cooling) at most `budget` × the 300 K baseline device
    /// power.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoFeasibleOperatingPoint`] if no grid point
    /// meets the budget.
    pub fn maximize_frequency(
        &self,
        t: Temperature,
        budget: f64,
    ) -> Result<VoltageScalingResult, DeviceError> {
        let mut best: Option<VoltageScalingResult> = None;
        let mut v_dd = 0.3;
        while v_dd <= 1.3 {
            let mut v_th = 0.1;
            while v_th <= 0.6 {
                if let Ok(res) = self.evaluate(OperatingPoint { v_dd, v_th }, t) {
                    if res.total_power_factor <= budget
                        && best.is_none_or(|b| res.frequency_factor > b.frequency_factor)
                    {
                        best = Some(res);
                    }
                }
                v_th += 0.005;
            }
            v_dd += 0.01;
        }
        best.ok_or(DeviceError::NoFeasibleOperatingPoint { budget })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_point_is_unity() {
        let opt = VoltageOptimizer::new(&MosfetModel::industry_45nm())
            .with_cooling(CoolingModel::ambient());
        let res = opt
            .evaluate(OperatingPoint::baseline_300k(), Temperature::ambient())
            .unwrap();
        assert!((res.frequency_factor - 1.0).abs() < 1e-9);
        assert!((res.device_power_factor - 1.0).abs() < 1e-9);
        assert!((res.total_power_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vth_scaling_infeasible_at_300k() {
        // Section 2.3: lowering V_th at 300 K explodes leakage; the CryoSP
        // point at 300 K must blow well past the baseline power.
        let opt = VoltageOptimizer::new(&MosfetModel::industry_45nm())
            .with_cooling(CoolingModel::ambient());
        let res = opt
            .evaluate(OperatingPoint::cryosp(), Temperature::ambient())
            .unwrap();
        assert!(
            res.device_power_factor > 2.0,
            "CryoSP point at 300 K should be power-infeasible, got {}",
            res.device_power_factor
        );
    }

    #[test]
    fn optimizer_beats_nominal_frequency_at_77k() {
        let opt =
            VoltageOptimizer::new(&MosfetModel::industry_45nm()).with_capacitance_factor(0.35);
        let res = opt
            .maximize_frequency(Temperature::liquid_nitrogen(), 1.0)
            .unwrap();
        // Voltage scaling plus the cold transistors must beat 300 K
        // frequency despite the 10.65x cooling multiplier.
        assert!(
            res.frequency_factor > 1.0,
            "77 K optimized frequency factor = {}",
            res.frequency_factor
        );
        assert!(res.total_power_factor <= 1.0 + 1e-9);
    }

    #[test]
    fn optimizer_lands_near_paper_voltage_region() {
        // CryoSP's published point is 0.64 V / 0.25 V; our optimizer should
        // land in the same low-voltage region (within ~0.2 V).
        let opt =
            VoltageOptimizer::new(&MosfetModel::industry_45nm()).with_capacitance_factor(0.35);
        let res = opt
            .maximize_frequency(Temperature::liquid_nitrogen(), 1.0)
            .unwrap();
        assert!(
            res.point.v_dd < 1.1,
            "optimizer should pick a scaled V_dd, got {}",
            res.point.v_dd
        );
        assert!(
            res.point.v_th < 0.47,
            "optimizer should pick a scaled V_th, got {}",
            res.point.v_th
        );
    }

    #[test]
    fn infeasible_budget_errors() {
        let opt = VoltageOptimizer::new(&MosfetModel::industry_45nm());
        let err = opt
            .maximize_frequency(Temperature::liquid_nitrogen(), 1e-9)
            .unwrap_err();
        assert!(matches!(err, DeviceError::NoFeasibleOperatingPoint { .. }));
    }

    #[test]
    fn bigger_budget_never_hurts() {
        let opt =
            VoltageOptimizer::new(&MosfetModel::industry_45nm()).with_capacitance_factor(0.35);
        let lo = opt
            .maximize_frequency(Temperature::liquid_nitrogen(), 0.5)
            .unwrap();
        let hi = opt
            .maximize_frequency(Temperature::liquid_nitrogen(), 1.0)
            .unwrap();
        assert!(hi.frequency_factor >= lo.frequency_factor);
    }
}
