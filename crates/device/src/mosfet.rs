//! Compact cryogenic MOSFET model (the cryo-MOSFET substitute).
//!
//! Captures the three temperature effects the paper's analysis rests on:
//!
//! 1. carrier mobility improves as T drops (µ ∝ (300/T)^m),
//! 2. the threshold voltage *rises* as T drops, eating into the overdrive,
//!    so complex-logic paths only speed up ~8 % at 77 K without voltage
//!    scaling (Section 4.3, Observation #1),
//! 3. subthreshold leakage collapses exponentially with T, which is what
//!    makes aggressive V_dd/V_th scaling feasible at 77 K and infeasible at
//!    300 K (Section 2.3).
//!
//! Threshold-voltage convention: explicit operating points (e.g. Table 3's
//! CryoSP 0.64 V / 0.25 V) give the threshold *as seen at the operating
//! temperature* — the designers compensate the natural cryogenic V_th rise.
//! The *nominal* 300 K design (V_th = 0.47 V), by contrast, shifts upward
//! when merely cooled; [`MosfetModel::nominal_state`] applies that shift.

use crate::calib;
use crate::error::DeviceError;
use crate::temperature::Temperature;

/// Thermal voltage kT/q at temperature `t`, in volts.
#[must_use]
pub fn thermal_voltage(t: Temperature) -> f64 {
    8.617_333e-5 * t.kelvin()
}

/// The circuit style a gate-delay query refers to.
///
/// The paper's own data implies two distinct temperature sensitivities:
/// complex logic paths (stacked devices, body effect amplifies the V_th
/// shift) improve only ~8 % at 77 K, while simple inverter repeater chains
/// improve ~37 % (derived from Fig. 5b: 2.25² / 3.69 ≈ 1.37). We model the
/// difference as a per-style effective V_th temperature coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateStyle {
    /// Multi-input gates on pipeline critical paths.
    ComplexLogic,
    /// Inverter chains used as wire repeaters and link drivers.
    Repeater,
}

/// Evaluated MOSFET characteristics at one (temperature, voltage) point,
/// normalized to the 300 K nominal-voltage operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetState {
    /// On-current relative to 300 K nominal (higher is faster).
    pub on_current_factor: f64,
    /// Gate delay relative to 300 K nominal (lower is faster).
    pub delay_factor: f64,
    /// Subthreshold leakage current relative to 300 K nominal.
    pub leakage_factor: f64,
    /// Dynamic energy per switch relative to 300 K nominal (∝ V_dd²).
    pub dynamic_energy_factor: f64,
}

/// Compact MOSFET model with alpha-power-law on-current and exponential
/// subthreshold leakage.
///
/// ```
/// use cryowire_device::{MosfetModel, GateStyle, Temperature};
/// let m = MosfetModel::industry_45nm();
/// let s = m.nominal_state(GateStyle::ComplexLogic, Temperature::liquid_nitrogen())?;
/// // Paper: logic paths speed up only ~8 % at 77 K without voltage scaling.
/// assert!((1.0 / s.delay_factor - 1.08).abs() < 0.03);
/// # Ok::<(), cryowire_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MosfetModel {
    /// Nominal supply voltage at 300 K.
    v_dd_nominal: f64,
    /// Nominal (design) threshold voltage at 300 K.
    v_th_nominal: f64,
    /// Alpha-power-law velocity-saturation exponent.
    alpha: f64,
    /// Mobility temperature exponent: µ(T) = µ₃₀₀ (300/T)^m.
    mobility_exponent: f64,
    /// Effective V_th temperature coefficient for complex logic, V/K
    /// (V_th rises as T falls).
    vth_tempco_logic: f64,
    /// Effective V_th temperature coefficient for repeater inverters, V/K.
    vth_tempco_repeater: f64,
    /// Subthreshold ideality factor n (swing = n·kT/q·ln10).
    subthreshold_n: f64,
    /// DIBL coefficient, V of V_th reduction per V of V_dd.
    dibl: f64,
    /// Minimum-inverter output resistance at 300 K nominal, Ω.
    r0_ohm: f64,
    /// Minimum-inverter input capacitance, F.
    c0_farad: f64,
    /// Minimum-inverter parasitic (self-load) capacitance, F.
    cp_farad: f64,
}

impl MosfetModel {
    /// The 45 nm-class model calibrated to the paper's anchors:
    /// ~8 % logic speed-up and ~37 % repeater speed-up at 77 K.
    #[must_use]
    pub fn industry_45nm() -> Self {
        MosfetModel {
            v_dd_nominal: calib::VDD_300K_BASELINE,
            v_th_nominal: calib::VTH_300K_BASELINE,
            alpha: 1.15,
            mobility_exponent: 0.29,
            vth_tempco_logic: 8.5e-4,
            vth_tempco_repeater: 2.0e-4,
            subthreshold_n: 1.3,
            dibl: 0.08,
            r0_ohm: 28_000.0,
            c0_farad: 0.2e-15,
            cp_farad: 0.2e-15,
        }
    }

    /// Nominal supply voltage at 300 K, volts.
    #[must_use]
    pub fn v_dd_nominal(&self) -> f64 {
        self.v_dd_nominal
    }

    /// Nominal threshold voltage at 300 K, volts.
    #[must_use]
    pub fn v_th_nominal(&self) -> f64 {
        self.v_th_nominal
    }

    /// Minimum-inverter output resistance at 300 K nominal voltage, Ω.
    #[must_use]
    pub fn r0_ohm(&self) -> f64 {
        self.r0_ohm
    }

    /// Minimum-inverter input capacitance, farads.
    #[must_use]
    pub fn c0_farad(&self) -> f64 {
        self.c0_farad
    }

    /// Minimum-inverter parasitic output capacitance, farads.
    #[must_use]
    pub fn cp_farad(&self) -> f64 {
        self.cp_farad
    }

    /// Effective threshold voltage of `style` circuits at temperature `t`
    /// for a 300 K design threshold of `v_th_design` (no compensation).
    #[must_use]
    pub fn effective_v_th(&self, style: GateStyle, t: Temperature, v_th_design: f64) -> f64 {
        let kappa = match style {
            GateStyle::ComplexLogic => self.vth_tempco_logic,
            GateStyle::Repeater => self.vth_tempco_repeater,
        };
        v_th_design + kappa * (300.0 - t.kelvin())
    }

    /// Evaluates the model at temperature `t`, supply `v_dd`, and threshold
    /// `v_th` **as seen at `t`** (the Table 3/4 convention).
    ///
    /// All returned factors are normalized to the 300 K nominal-voltage
    /// point of the same style.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidVoltage`] if `v_dd <= 0`, `v_th <= 0`,
    /// or the overdrive `v_dd - v_th` is below 50 mV.
    pub fn state(&self, t: Temperature, v_dd: f64, v_th: f64) -> Result<MosfetState, DeviceError> {
        if v_dd <= 0.0 || v_th <= 0.0 || !v_dd.is_finite() || !v_th.is_finite() {
            return Err(DeviceError::InvalidVoltage { v_dd, v_th });
        }
        let overdrive = v_dd - v_th;
        if overdrive <= 0.05 {
            return Err(DeviceError::InvalidVoltage { v_dd, v_th });
        }

        // Reference: 300 K, nominal voltages (no shift at 300 K).
        let od_ref = self.v_dd_nominal - self.v_th_nominal;

        let mobility = (300.0 / t.kelvin()).powf(self.mobility_exponent);
        let ion = mobility * (overdrive / od_ref).powf(self.alpha);
        // Gate delay ∝ C · V_dd / I_on; C is temperature-independent.
        let delay = (v_dd / self.v_dd_nominal) / ion;

        let leakage = self.leakage_factor(t, v_dd, v_th);
        let dyn_energy = (v_dd / self.v_dd_nominal).powi(2);

        Ok(MosfetState {
            on_current_factor: ion,
            delay_factor: delay,
            leakage_factor: leakage,
            dynamic_energy_factor: dyn_energy,
        })
    }

    /// Model state of an *uncompensated* 300 K design (V_dd = 1.25 V,
    /// design V_th = 0.47 V) merely cooled to `t`: the natural cryogenic
    /// V_th rise is applied before evaluation.
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError::InvalidVoltage`] if the shifted point is
    /// infeasible at `t` (cannot happen for the validated range).
    pub fn nominal_state(
        &self,
        style: GateStyle,
        t: Temperature,
    ) -> Result<MosfetState, DeviceError> {
        let v_th_eff = self.effective_v_th(style, t, self.v_th_nominal);
        self.state(t, self.v_dd_nominal, v_th_eff)
    }

    /// Subthreshold leakage current relative to the 300 K nominal point.
    ///
    /// `I_leak ∝ (T/300)² · exp((−V_th + η·V_dd) / (n·kT/q))`, the standard
    /// compact form; the exponential in 1/T is what makes 77 K leakage
    /// vanish (and 300 K low-V_th leakage explode).
    #[must_use]
    pub fn leakage_factor(&self, t: Temperature, v_dd: f64, v_th: f64) -> f64 {
        let exponent = |t: Temperature, v_dd: f64, v_th: f64| {
            let vt = thermal_voltage(t);
            (-v_th + self.dibl * v_dd) / (self.subthreshold_n * vt)
        };
        let t300 = Temperature::ambient();
        let ref_exp = exponent(t300, self.v_dd_nominal, self.v_th_nominal);
        let this_exp = exponent(t, v_dd, v_th);
        (t.kelvin() / 300.0).powi(2) * (this_exp - ref_exp).exp()
    }

    /// Delay speed-up of `style` circuits at temperature `t` relative to
    /// 300 K, both at nominal design voltages (no V_th compensation).
    ///
    /// # Panics
    ///
    /// Never panics for temperatures in the validated range (the nominal
    /// point is always feasible there).
    #[must_use]
    pub fn speedup(&self, style: GateStyle, t: Temperature) -> f64 {
        let s = self
            .nominal_state(style, t)
            .expect("nominal point is feasible in validated range");
        1.0 / s.delay_factor
    }
}

impl Default for MosfetModel {
    fn default() -> Self {
        MosfetModel::industry_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: f64) -> Temperature {
        Temperature::new(k).unwrap()
    }

    #[test]
    fn logic_speedup_matches_paper_8_percent() {
        let m = MosfetModel::industry_45nm();
        let s = m.speedup(GateStyle::ComplexLogic, Temperature::liquid_nitrogen());
        assert!(
            (s - calib::LOGIC_SPEEDUP_77K).abs() < 0.03,
            "logic speedup at 77 K = {s}, paper anchor 1.08"
        );
    }

    #[test]
    fn repeater_speedup_matches_implied_37_percent() {
        let m = MosfetModel::industry_45nm();
        let s = m.speedup(GateStyle::Repeater, Temperature::liquid_nitrogen());
        assert!(
            (s - calib::REPEATER_SPEEDUP_77K).abs() < 0.06,
            "repeater speedup at 77 K = {s}, implied anchor 1.37"
        );
    }

    #[test]
    fn leakage_collapses_at_77k() {
        let m = MosfetModel::industry_45nm();
        let s = m
            .nominal_state(GateStyle::ComplexLogic, Temperature::liquid_nitrogen())
            .unwrap();
        assert!(
            s.leakage_factor < 1e-12,
            "77 K leakage factor = {}",
            s.leakage_factor
        );
    }

    #[test]
    fn low_vth_explodes_leakage_at_300k_but_not_77k() {
        // Section 2.3: V_dd/V_th scaling is only feasible at cryogenic
        // temperatures.
        let m = MosfetModel::industry_45nm();
        let at_300 = m.leakage_factor(Temperature::ambient(), calib::VDD_CRYOSP, calib::VTH_CRYOSP);
        let at_77 = m.leakage_factor(
            Temperature::liquid_nitrogen(),
            calib::VDD_CRYOSP,
            calib::VTH_CRYOSP,
        );
        assert!(at_300 > 50.0, "300 K low-Vth leakage factor = {at_300}");
        assert!(at_77 < 1e-6, "77 K low-Vth leakage factor = {at_77}");
    }

    #[test]
    fn voltage_scaling_recovers_frequency_at_77k() {
        // Table 3: CryoSP's (0.64 V, 0.25 V) point at 77 K is ~1.22x faster
        // than the 77 K uncompensated nominal point (7.84 / 6.44 GHz).
        let m = MosfetModel::industry_45nm();
        let t77 = Temperature::liquid_nitrogen();
        let nominal = m.nominal_state(GateStyle::ComplexLogic, t77).unwrap();
        let scaled = m.state(t77, calib::VDD_CRYOSP, calib::VTH_CRYOSP).unwrap();
        let gain = nominal.delay_factor / scaled.delay_factor;
        assert!(
            (gain - 1.218).abs() < 0.08,
            "CryoSP voltage-scaling frequency gain = {gain}, paper implies ~1.22"
        );
    }

    #[test]
    fn chp_voltage_point_gain() {
        // Table 3: CHP-core's (0.75 V, 0.25 V) implies ~1.31x over the 77 K
        // nominal point (6.1 GHz from ~4.67 GHz). Our compact model lands
        // within ~6 %.
        let m = MosfetModel::industry_45nm();
        let t77 = Temperature::liquid_nitrogen();
        let nominal = m.nominal_state(GateStyle::ComplexLogic, t77).unwrap();
        let scaled = m.state(t77, calib::VDD_CHP, calib::VTH_CHP).unwrap();
        let gain = nominal.delay_factor / scaled.delay_factor;
        assert!(
            (gain - 1.306).abs() < 0.12,
            "CHP voltage-scaling frequency gain = {gain}, paper implies ~1.31"
        );
    }

    #[test]
    fn rejects_infeasible_voltages() {
        let m = MosfetModel::industry_45nm();
        let t77 = Temperature::liquid_nitrogen();
        assert!(m.state(t77, 0.3, 0.47).is_err());
        assert!(m.state(t77, -1.0, 0.25).is_err());
        assert!(m.state(t77, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn dynamic_energy_scales_quadratically() {
        let m = MosfetModel::industry_45nm();
        let s = m
            .state(
                Temperature::liquid_nitrogen(),
                calib::VDD_300K_BASELINE / 2.0,
                0.25,
            )
            .unwrap();
        assert!((s.dynamic_energy_factor - 0.25).abs() < 1e-9);
    }

    #[test]
    fn delay_monotone_in_temperature_at_nominal() {
        let m = MosfetModel::industry_45nm();
        let mut last = f64::INFINITY;
        for k in [300.0, 200.0, 135.0, 100.0, 77.0] {
            let s = m.nominal_state(GateStyle::Repeater, t(k)).unwrap();
            assert!(s.delay_factor < last, "repeater delay should fall with T");
            last = s.delay_factor;
        }
    }
}
