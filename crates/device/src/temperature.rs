//! Temperature newtype and the validated operating range.

use crate::error::DeviceError;
use std::fmt;

/// Lowest temperature (kelvin) at which the models are considered valid.
///
/// Below ~60 K carrier freeze-out and incomplete ionization effects that the
/// compact models ignore become significant.
pub const MIN_KELVIN: f64 = 60.0;

/// Highest temperature (kelvin) at which the models are considered valid.
pub const MAX_KELVIN: f64 = 400.0;

/// An absolute temperature in kelvin.
///
/// `Temperature` is the single temperature currency across all CryoWire
/// models. Constructing one via [`Temperature::new`] validates that the
/// value lies in the range the models were calibrated for
/// ([`MIN_KELVIN`], [`MAX_KELVIN`]).
///
/// ```
/// use cryowire_device::Temperature;
/// let t = Temperature::new(77.0)?;
/// assert_eq!(t.kelvin(), 77.0);
/// # Ok::<(), cryowire_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Temperature(f64);

impl Temperature {
    /// Creates a temperature, validating the model range.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::TemperatureOutOfRange`] if `kelvin` is not in
    /// `[MIN_KELVIN, MAX_KELVIN]` or is not finite.
    pub fn new(kelvin: f64) -> Result<Self, DeviceError> {
        if !kelvin.is_finite() || !(MIN_KELVIN..=MAX_KELVIN).contains(&kelvin) {
            return Err(DeviceError::TemperatureOutOfRange {
                kelvin,
                min: MIN_KELVIN,
                max: MAX_KELVIN,
            });
        }
        Ok(Temperature(kelvin))
    }

    /// Room temperature, 300 K — the paper's conventional baseline.
    #[must_use]
    pub fn ambient() -> Self {
        Temperature(300.0)
    }

    /// Liquid-nitrogen temperature, 77 K — the paper's cryogenic target.
    #[must_use]
    pub fn liquid_nitrogen() -> Self {
        Temperature(77.0)
    }

    /// The 135 K point used for the paper's real-machine validation
    /// (evaporator-cooled commodity boards, Fig. 8/9).
    #[must_use]
    pub fn validation_point() -> Self {
        Temperature(135.0)
    }

    /// The value in kelvin.
    #[must_use]
    pub fn kelvin(self) -> f64 {
        self.0
    }

    /// Temperature in units of 300 K (1.0 at ambient).
    #[must_use]
    pub fn normalized(self) -> f64 {
        self.0 / 300.0
    }

    /// True if this is a cryogenic temperature (below 150 K by convention).
    #[must_use]
    pub fn is_cryogenic(self) -> bool {
        self.0 < 150.0
    }
}

impl fmt::Display for Temperature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} K", self.0)
    }
}

impl TryFrom<f64> for Temperature {
    type Error = DeviceError;

    fn try_from(kelvin: f64) -> Result<Self, Self::Error> {
        Temperature::new(kelvin)
    }
}

impl From<Temperature> for f64 {
    fn from(t: Temperature) -> f64 {
        t.kelvin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_match_paper_temperatures() {
        assert_eq!(Temperature::ambient().kelvin(), 300.0);
        assert_eq!(Temperature::liquid_nitrogen().kelvin(), 77.0);
        assert_eq!(Temperature::validation_point().kelvin(), 135.0);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Temperature::new(4.2).is_err());
        assert!(Temperature::new(500.0).is_err());
        assert!(Temperature::new(f64::NAN).is_err());
        assert!(Temperature::new(f64::INFINITY).is_err());
    }

    #[test]
    fn accepts_boundaries() {
        assert!(Temperature::new(MIN_KELVIN).is_ok());
        assert!(Temperature::new(MAX_KELVIN).is_ok());
    }

    #[test]
    fn cryogenic_predicate() {
        assert!(Temperature::liquid_nitrogen().is_cryogenic());
        assert!(Temperature::validation_point().is_cryogenic());
        assert!(!Temperature::ambient().is_cryogenic());
    }

    #[test]
    fn display_and_conversions() {
        let t = Temperature::new(77.0).unwrap();
        assert_eq!(t.to_string(), "77 K");
        assert_eq!(f64::from(t), 77.0);
        assert_eq!(Temperature::try_from(77.0).unwrap(), t);
        assert!((t.normalized() - 77.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_works() {
        assert!(Temperature::liquid_nitrogen() < Temperature::ambient());
    }
}
