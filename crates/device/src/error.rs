//! Error types for the device-model crate.

use std::error::Error;
use std::fmt;

/// Errors produced by device-level models.
///
/// All model entry points validate their arguments (temperatures, voltages,
/// geometries) and return this error rather than producing silently
/// meaningless physics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// Temperature outside the validated model range.
    TemperatureOutOfRange {
        /// The offending temperature in kelvin.
        kelvin: f64,
        /// Inclusive lower bound of the validated range, in kelvin.
        min: f64,
        /// Inclusive upper bound of the validated range, in kelvin.
        max: f64,
    },
    /// A supply / threshold voltage pair that the model rejects
    /// (e.g. `v_dd <= v_th`, or a negative voltage).
    InvalidVoltage {
        /// Supply voltage in volts.
        v_dd: f64,
        /// Threshold voltage in volts.
        v_th: f64,
    },
    /// A geometric parameter (length, width, pitch, ...) that must be
    /// strictly positive was zero or negative.
    InvalidGeometry {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The voltage optimizer could not find any feasible operating point
    /// under the given power budget.
    NoFeasibleOperatingPoint {
        /// The power budget (normalized) that could not be met.
        budget: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::TemperatureOutOfRange { kelvin, min, max } => write!(
                f,
                "temperature {kelvin} K outside validated model range [{min} K, {max} K]"
            ),
            DeviceError::InvalidVoltage { v_dd, v_th } => {
                write!(f, "invalid voltage pair v_dd={v_dd} V, v_th={v_th} V")
            }
            DeviceError::InvalidGeometry { parameter, value } => {
                write!(
                    f,
                    "invalid geometry: {parameter} = {value} must be positive"
                )
            }
            DeviceError::NoFeasibleOperatingPoint { budget } => write!(
                f,
                "no feasible operating point under normalized power budget {budget}"
            ),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = DeviceError::TemperatureOutOfRange {
            kelvin: 4.0,
            min: 60.0,
            max: 400.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("4 K"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }

    #[test]
    fn errors_compare_equal() {
        let a = DeviceError::InvalidVoltage {
            v_dd: 1.0,
            v_th: 1.2,
        };
        let b = DeviceError::InvalidVoltage {
            v_dd: 1.0,
            v_th: 1.2,
        };
        assert_eq!(a, b);
    }
}
