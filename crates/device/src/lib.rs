//! # cryowire-device
//!
//! Device-level models for cryogenic computing: temperature-dependent wire
//! resistivity, distributed-RC wire delay with latency-optimal repeater
//! insertion, a compact cryogenic MOSFET model, voltage (V_dd/V_th) scaling,
//! and cryo-cooler cost models.
//!
//! This crate is the Rust substitute for the Hspice + industry-model-card +
//! cryo-MOSFET/cryo-wire toolchain used by the CryoWire paper (Min et al.,
//! ASPLOS 2022). Every model is analytical and calibrated against the
//! measured numbers the paper publishes (see [`calib`]).
//!
//! ## Quick example
//!
//! ```
//! use cryowire_device::{Temperature, WireClass, Wire, RepeaterOptimizer, MosfetModel};
//!
//! let t300 = Temperature::ambient();
//! let t77 = Temperature::liquid_nitrogen();
//! let mosfet = MosfetModel::industry_45nm();
//! let wire = Wire::new(WireClass::Global, 6_220.0); // 6.22 mm global wire
//! let opt = RepeaterOptimizer::new(&mosfet);
//! let d300 = opt.optimal_delay(&wire, t300);
//! let d77 = opt.optimal_delay(&wire, t77);
//! assert!(d300 / d77 > 3.0); // >3x wire speed-up at 77 K
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calib;
pub mod cooling;
pub mod elmore;
pub mod error;
pub mod mosfet;
pub mod repeater;
pub mod resistivity;
pub mod temperature;
pub mod voltage;
pub mod wire;

pub use cooling::{CoolingModel, CoolingSystem};
pub use elmore::RcTree;
pub use error::DeviceError;
pub use mosfet::{GateStyle, MosfetModel, MosfetState};
pub use repeater::{RepeaterDesign, RepeaterOptimizer};
pub use resistivity::ResistivityModel;
pub use temperature::Temperature;
pub use voltage::{OperatingPoint, VoltageOptimizer, VoltageScalingResult};
pub use wire::{Wire, WireClass, WireDelay, WireGeometry};
