//! Wire geometry and distributed-RC delay (the cryo-wire substitute).
//!
//! Wires are classified as in Section 2.1 of the paper: **local** (thinnest,
//! adjacent gates), **semi-global** (intra-core, unit-to-unit, e.g. the
//! data-forwarding network), and **global** (thickest, NoC links). Delay of
//! an unrepeated wire uses the standard Elmore form for a lumped driver and
//! distributed RC line:
//!
//! `t = 0.69·R_drv·(C_par + C_wire + C_load) + R_wire·(0.38·C_wire + 0.69·C_load)`
//!
//! Repeater insertion lives in [`crate::repeater`].

use crate::error::DeviceError;
use crate::mosfet::{GateStyle, MosfetModel};
use crate::resistivity::ResistivityModel;
use crate::temperature::Temperature;

/// Metal-layer class of a wire (Section 2.1 / Fig. 1b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum WireClass {
    /// Thinnest, highest-resistivity wires connecting adjacent gates.
    Local = 0,
    /// Mid-layer wires connecting microarchitectural units inside a core
    /// ("intra-core wires", e.g. the forwarding network).
    SemiGlobal = 1,
    /// Thickest, lowest-resistivity top-layer wires used by the NoC
    /// ("inter-core wires").
    Global = 2,
}

impl WireClass {
    /// All classes, thinnest first.
    pub const ALL: [WireClass; 3] = [WireClass::Local, WireClass::SemiGlobal, WireClass::Global];
}

/// Physical cross-section and capacitance of one wire class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireGeometry {
    /// Drawn width, µm.
    pub width_um: f64,
    /// Metal thickness, µm.
    pub thickness_um: f64,
    /// Capacitance per micron, fF/µm.
    pub cap_per_um_ff: f64,
    /// Default driver size (multiple of a minimum inverter) used when the
    /// wire is driven without repeaters.
    pub default_driver_size: f64,
    /// Default receiver load, fF.
    pub default_load_ff: f64,
}

impl WireGeometry {
    /// 45 nm-class geometry for `class` (Mistry 2007-era dimensions).
    #[must_use]
    pub fn for_class(class: WireClass) -> Self {
        match class {
            WireClass::Local => WireGeometry {
                width_um: 0.065,
                thickness_um: 0.13,
                cap_per_um_ff: 0.19,
                default_driver_size: 64.0,
                default_load_ff: 2.0,
            },
            WireClass::SemiGlobal => WireGeometry {
                width_um: 0.14,
                thickness_um: 0.25,
                cap_per_um_ff: 0.21,
                // Forwarding-network wires are driven by large ALU output
                // drivers; calibrated so the 1686 µm forwarding wire speeds
                // up 2.81x at 77 K (Section 4.3).
                default_driver_size: 256.0,
                default_load_ff: 10.0,
            },
            WireClass::Global => WireGeometry {
                width_um: 0.2,
                thickness_um: 0.45,
                cap_per_um_ff: 0.24,
                default_driver_size: 256.0,
                default_load_ff: 10.0,
            },
        }
    }

    /// Cross-sectional area, µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.width_um * self.thickness_um
    }
}

/// A wire of a given class and length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wire {
    class: WireClass,
    length_um: f64,
    geometry: WireGeometry,
}

impl Wire {
    /// Creates a wire of `class` with default 45 nm geometry.
    ///
    /// # Panics
    ///
    /// Panics if `length_um` is not strictly positive; use
    /// [`Wire::try_new`] for fallible construction.
    #[must_use]
    pub fn new(class: WireClass, length_um: f64) -> Self {
        Wire::try_new(class, length_um).expect("wire length must be positive")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidGeometry`] if `length_um` is not a
    /// positive finite number.
    pub fn try_new(class: WireClass, length_um: f64) -> Result<Self, DeviceError> {
        if !length_um.is_finite() || length_um <= 0.0 {
            return Err(DeviceError::InvalidGeometry {
                parameter: "length_um",
                value: length_um,
            });
        }
        Ok(Wire {
            class,
            length_um,
            geometry: WireGeometry::for_class(class),
        })
    }

    /// Replaces the geometry (e.g. to model the "draw wires thicker"
    /// mitigation of Section 7.5).
    #[must_use]
    pub fn with_geometry(mut self, geometry: WireGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// The wire's metal-layer class.
    #[must_use]
    pub fn class(&self) -> WireClass {
        self.class
    }

    /// Length in microns.
    #[must_use]
    pub fn length_um(&self) -> f64 {
        self.length_um
    }

    /// The wire's geometry.
    #[must_use]
    pub fn geometry(&self) -> &WireGeometry {
        &self.geometry
    }

    /// Resistance per micron at temperature `t`, in Ω/µm.
    ///
    /// `r = ρ(class, T) / (width × thickness)`; resistivity is converted
    /// from µΩ·cm.
    #[must_use]
    pub fn resistance_per_um(&self, rho: &ResistivityModel, t: Temperature) -> f64 {
        let rho_ohm_m = rho.resistivity(self.class, t) * 1e-8; // µΩ·cm → Ω·m
        let area_m2 = self.geometry.area_um2() * 1e-12;
        rho_ohm_m * 1e-6 / area_m2
    }

    /// Total wire resistance at `t`, Ω.
    #[must_use]
    pub fn total_resistance(&self, rho: &ResistivityModel, t: Temperature) -> f64 {
        self.resistance_per_um(rho, t) * self.length_um
    }

    /// Capacitance per micron, farads.
    #[must_use]
    pub fn cap_per_um(&self) -> f64 {
        self.geometry.cap_per_um_ff * 1e-15
    }

    /// Total wire capacitance, farads.
    #[must_use]
    pub fn total_capacitance(&self) -> f64 {
        self.cap_per_um() * self.length_um
    }

    /// Delay of the unrepeated wire at temperature `t`, driven by an
    /// inverter of the geometry's default size, in picoseconds.
    #[must_use]
    pub fn unrepeated_delay_ps(
        &self,
        mosfet: &MosfetModel,
        rho: &ResistivityModel,
        t: Temperature,
    ) -> f64 {
        self.unrepeated_delay_with_driver_ps(mosfet, rho, t, self.geometry.default_driver_size)
    }

    /// Delay of the unrepeated wire with an explicit driver size, in ps.
    ///
    /// The driver is an inverter chain endpoint modelled with the
    /// [`GateStyle::Repeater`] temperature behaviour.
    #[must_use]
    pub fn unrepeated_delay_with_driver_ps(
        &self,
        mosfet: &MosfetModel,
        rho: &ResistivityModel,
        t: Temperature,
        driver_size: f64,
    ) -> f64 {
        let breakdown = self.unrepeated_delay_breakdown(mosfet, rho, t, driver_size);
        breakdown.total_ps()
    }

    /// Driver/wire delay decomposition for the unrepeated wire, in ps.
    #[must_use]
    pub fn unrepeated_delay_breakdown(
        &self,
        mosfet: &MosfetModel,
        rho: &ResistivityModel,
        t: Temperature,
        driver_size: f64,
    ) -> WireDelay {
        let ion = mosfet
            .nominal_state(GateStyle::Repeater, t)
            .expect("nominal point feasible")
            .on_current_factor;
        let r_drv = mosfet.r0_ohm() / driver_size / ion;
        let c_par = mosfet.cp_farad() * driver_size;
        let c_wire = self.total_capacitance();
        let c_load = self.geometry.default_load_ff * 1e-15;
        let r_wire = self.total_resistance(rho, t);

        let driver_s = 0.69 * r_drv * (c_par + c_wire + c_load);
        let wire_s = r_wire * (0.38 * c_wire + 0.69 * c_load);
        WireDelay {
            driver_ps: driver_s * 1e12,
            wire_ps: wire_s * 1e12,
        }
    }

    /// 77 K speed-up of the unrepeated wire relative to 300 K.
    #[must_use]
    pub fn unrepeated_speedup(
        &self,
        mosfet: &MosfetModel,
        rho: &ResistivityModel,
        t: Temperature,
    ) -> f64 {
        let d300 = self.unrepeated_delay_ps(mosfet, rho, Temperature::ambient());
        let dt = self.unrepeated_delay_ps(mosfet, rho, t);
        d300 / dt
    }
}

/// Driver/wire decomposition of a wire delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireDelay {
    /// Delay attributable to the driver (transistor), ps.
    pub driver_ps: f64,
    /// Delay attributable to the distributed wire RC, ps.
    pub wire_ps: f64,
}

impl WireDelay {
    /// Total delay, ps.
    #[must_use]
    pub fn total_ps(&self) -> f64 {
        self.driver_ps + self.wire_ps
    }

    /// Fraction of the delay attributable to the wire (0..1).
    #[must_use]
    pub fn wire_fraction(&self) -> f64 {
        self.wire_ps / self.total_ps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib;

    fn setup() -> (MosfetModel, ResistivityModel) {
        (MosfetModel::industry_45nm(), ResistivityModel::intel_45nm())
    }

    #[test]
    fn rejects_nonpositive_length() {
        assert!(Wire::try_new(WireClass::Local, 0.0).is_err());
        assert!(Wire::try_new(WireClass::Local, -5.0).is_err());
        assert!(Wire::try_new(WireClass::Local, f64::NAN).is_err());
    }

    #[test]
    fn resistance_scales_with_length_and_temperature() {
        let (_, rho) = setup();
        let short = Wire::new(WireClass::SemiGlobal, 100.0);
        let long = Wire::new(WireClass::SemiGlobal, 200.0);
        let t300 = Temperature::ambient();
        let t77 = Temperature::liquid_nitrogen();
        let r_short = short.total_resistance(&rho, t300);
        let r_long = long.total_resistance(&rho, t300);
        assert!((r_long / r_short - 2.0).abs() < 1e-9);
        assert!(short.total_resistance(&rho, t77) < r_short);
    }

    #[test]
    fn forwarding_wire_speedup_matches_paper() {
        // Section 4.3: the pipeline's semi-global forwarding wires speed up
        // ~2.81x at 77 K. The 1686 µm length is Table 1's forwarding wire.
        let (mosfet, rho) = setup();
        let wire = Wire::new(WireClass::SemiGlobal, 1686.0);
        let s = wire.unrepeated_speedup(&mosfet, &rho, Temperature::liquid_nitrogen());
        assert!(
            (s - calib::PIPELINE_WIRE_SPEEDUP_77K).abs() < 0.15,
            "forwarding-wire speedup = {s}, paper anchor 2.81"
        );
    }

    #[test]
    fn long_local_wire_speedup_near_fig5a() {
        let (mosfet, rho) = setup();
        // "Long" local wire: speed-up approaches the resistance ratio
        // (paper Fig. 5a: 2.95x in maximum).
        let wire = Wire::new(WireClass::Local, 10_000.0);
        let s = wire.unrepeated_speedup(&mosfet, &rho, Temperature::liquid_nitrogen());
        assert!(s > 2.7 && s < 3.1, "long local wire speedup = {s}");
    }

    #[test]
    fn long_semi_global_wire_speedup_near_fig5a() {
        let (mosfet, rho) = setup();
        let wire = Wire::new(WireClass::SemiGlobal, 20_000.0);
        let s = wire.unrepeated_speedup(&mosfet, &rho, Temperature::liquid_nitrogen());
        assert!(s > 3.3 && s < 3.85, "long semi-global wire speedup = {s}");
    }

    #[test]
    fn speedup_grows_with_length() {
        // Longer wires are more wire-dominated, so they benefit more.
        let (mosfet, rho) = setup();
        let t77 = Temperature::liquid_nitrogen();
        let mut last = 0.0;
        for len in [50.0, 200.0, 900.0, 3_000.0, 10_000.0] {
            let s = Wire::new(WireClass::SemiGlobal, len).unrepeated_speedup(&mosfet, &rho, t77);
            assert!(s > last, "speedup must grow with length");
            last = s;
        }
    }

    #[test]
    fn wire_fraction_sane() {
        let (mosfet, rho) = setup();
        let wire = Wire::new(WireClass::SemiGlobal, 1686.0);
        let b = wire.unrepeated_delay_breakdown(&mosfet, &rho, Temperature::ambient(), 256.0);
        let f = b.wire_fraction();
        assert!(f > 0.4 && f < 0.95, "wire fraction = {f}");
    }
}
