//! Cryogenic cooling cost model (Section 6.1.2 and Section 7.4).
//!
//! The paper's LN-recycling Stinger coolers impose a recurring power
//! overhead: removing 1 W of heat at 77 K costs 9.65 W of cooling power.
//! For other temperatures the paper assumes coolers at 30 % of the Carnot
//! limit, which reproduces the same 9.65 constant at 77 K:
//!
//! `CO(T) = (T_hot − T) / (η · T)`, with `T_hot` = 300 K and `η` = 0.3.

use crate::calib;
use crate::temperature::Temperature;

/// The kind of cooling attached to a system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoolingSystem {
    /// Conventional ambient cooling: no power overhead beyond the device.
    Ambient,
    /// Cryo-cooler at a fraction of the Carnot limit (the paper's Stinger
    /// LN-recycling system).
    CryoCooler {
        /// Fraction of Carnot efficiency achieved (paper: 0.3).
        carnot_fraction: f64,
    },
}

/// Cooling overhead model mapping temperature to the cooling-power
/// multiplier of Eq. (1)/(2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolingModel {
    system: CoolingSystem,
    hot_side_k: f64,
}

impl CoolingModel {
    /// The paper's model: 30 %-of-Carnot cryo-coolers against a 300 K
    /// ambient.
    #[must_use]
    pub fn paper_default() -> Self {
        CoolingModel {
            system: CoolingSystem::CryoCooler {
                carnot_fraction: calib::CARNOT_FRACTION,
            },
            hot_side_k: calib::HOT_SIDE_K,
        }
    }

    /// An ambient-only model (CO = 0 at every temperature).
    #[must_use]
    pub fn ambient() -> Self {
        CoolingModel {
            system: CoolingSystem::Ambient,
            hot_side_k: calib::HOT_SIDE_K,
        }
    }

    /// Cooling overhead CO at temperature `t`: watts of cooling power per
    /// watt of device power (Eq. 1). Zero at or above the hot side.
    #[must_use]
    pub fn overhead(&self, t: Temperature) -> f64 {
        match self.system {
            CoolingSystem::Ambient => 0.0,
            CoolingSystem::CryoCooler { carnot_fraction } => {
                let tk = t.kelvin();
                if tk >= self.hot_side_k {
                    0.0
                } else {
                    (self.hot_side_k - tk) / (carnot_fraction * tk)
                }
            }
        }
    }

    /// Total-power multiplier `1 + CO` (Eq. 2): total power consumed per
    /// watt dissipated by the device.
    #[must_use]
    pub fn total_power_multiplier(&self, t: Temperature) -> f64 {
        1.0 + self.overhead(t)
    }
}

impl Default for CoolingModel {
    fn default() -> Self {
        CoolingModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_co_at_77k() {
        let m = CoolingModel::paper_default();
        let co = m.overhead(Temperature::liquid_nitrogen());
        assert!(
            (co - calib::COOLING_OVERHEAD_77K).abs() < 0.01,
            "CO(77 K) = {co}, paper 9.65"
        );
        assert!((m.total_power_multiplier(Temperature::liquid_nitrogen()) - 10.65).abs() < 0.01);
    }

    #[test]
    fn no_overhead_at_ambient() {
        let m = CoolingModel::paper_default();
        assert_eq!(m.overhead(Temperature::ambient()), 0.0);
        assert_eq!(m.total_power_multiplier(Temperature::ambient()), 1.0);
    }

    #[test]
    fn overhead_grows_as_temperature_falls() {
        // Section 7.4: CO increases "exponentially" (hyperbolically here)
        // with temperature reduction.
        let m = CoolingModel::paper_default();
        let mut last = 0.0;
        for k in [250.0, 200.0, 150.0, 100.0, 77.0, 60.0] {
            let co = m.overhead(Temperature::new(k).unwrap());
            assert!(co > last);
            last = co;
        }
    }

    #[test]
    fn ambient_model_is_free_everywhere() {
        let m = CoolingModel::ambient();
        assert_eq!(m.overhead(Temperature::liquid_nitrogen()), 0.0);
    }
}
