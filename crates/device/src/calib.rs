//! Calibration anchors.
//!
//! Every constant in this module is tied to a number printed in the CryoWire
//! paper (Min et al., ASPLOS 2022) or in the measurement literature it cites
//! (Matula 1979 for bulk copper resistivity; Plombon 2006 for size effects;
//! Mistry 2007 for Intel 45 nm interconnect). The models *compute* wire and
//! transistor behaviour from these anchors; the paper-reported speed-ups are
//! then reproduced by tests and benches, not hard-coded.

/// Bulk copper phonon resistivity at 300 K, in µΩ·cm (Matula 1979).
pub const RHO_PHONON_300K: f64 = 1.54;

/// Bulk copper residual resistivity for interconnect-grade copper, in µΩ·cm.
///
/// Chosen so the bulk 300 K resistivity is the canonical 1.72 µΩ·cm and the
/// bulk 300 K / 77 K ratio lands near the ~8x value measured for thick
/// (global-layer) damascene copper.
pub const RHO_RESIDUAL_BULK: f64 = 0.01;

/// Debye temperature of copper in kelvin, used by the reduced
/// Bloch–Grüneisen phonon term.
pub const COPPER_DEBYE_K: f64 = 343.0;

/// Temperature-independent size/grain-boundary scattering resistivity added
/// on top of bulk for **local** (M1/M2, thinnest) wires, in µΩ·cm.
///
/// Calibrated so that the long-wire 77 K speed-up of an unrepeated local
/// wire saturates near the paper's measured 2.95x (Fig. 5a).
pub const RHO_SIZE_LOCAL: f64 = 0.49;

/// Size/grain scattering term for **semi-global** (intra-core, mid-layer)
/// wires, in µΩ·cm.
///
/// Calibrated so the unrepeated semi-global 77 K speed-up saturates near
/// the paper's 3.69x (Fig. 5a) and the repeated 900 µm semi-global wire
/// lands near 2.25x (Fig. 5b).
pub const RHO_SIZE_SEMI_GLOBAL: f64 = 0.32;

/// Size/grain scattering term for **global** (top-layer, NoC) wires, in
/// µΩ·cm. Thick global wires behave nearly like bulk copper.
pub const RHO_SIZE_GLOBAL: f64 = 0.038;

/// Paper anchor: transistor (complex-logic critical path) delay improves by
/// only ~8 % at 77 K without voltage scaling (Section 4.3, Observation #1).
pub const LOGIC_SPEEDUP_77K: f64 = 1.08;

/// Paper anchor (implied): repeater/inverter chains improve by ~37 % at
/// 77 K. Derived from the paper's own Fig. 5b data: the repeated semi-global
/// speed-up is 2.25x while the semi-global wire-resistance ratio is 3.69,
/// and for a latency-optimally repeated wire, speed-up ≈ sqrt(r_ratio ×
/// device_ratio) ⇒ device_ratio ≈ 2.25² / 3.69 ≈ 1.37.
pub const REPEATER_SPEEDUP_77K: f64 = 1.37;

/// Paper anchor: semi-global wire speed-up used in the pipeline stage model
/// (Section 4.3: wires improve 2.81x while transistors improve 8 %).
pub const PIPELINE_WIRE_SPEEDUP_77K: f64 = 2.81;

/// Paper anchor: cooling overhead at 77 K — watts of cooling power per watt
/// of device power (Section 6.1.2, from Stinger cryo-cooler data).
pub const COOLING_OVERHEAD_77K: f64 = 9.65;

/// Fraction of the Carnot limit achieved by the assumed cryo-coolers
/// (Section 7.4 states "30 % of Carnot"). Note that
/// `(300 − 77) / (0.3 × 77) = 9.65` exactly reproduces
/// [`COOLING_OVERHEAD_77K`], so a single constant covers both anchors.
pub const CARNOT_FRACTION: f64 = 0.3;

/// Hot-side (ambient) temperature for the cooling model, kelvin.
pub const HOT_SIDE_K: f64 = 300.0;

/// 300 K baseline supply voltage (Table 3, 300K Baseline).
pub const VDD_300K_BASELINE: f64 = 1.25;

/// 300 K baseline threshold voltage (Table 3, 300K Baseline).
pub const VTH_300K_BASELINE: f64 = 0.47;

/// CryoSP supply voltage after 77 K voltage scaling (Table 3).
pub const VDD_CRYOSP: f64 = 0.64;

/// CryoSP threshold voltage after 77 K voltage scaling (Table 3).
pub const VTH_CRYOSP: f64 = 0.25;

/// CHP-core supply voltage (Table 3, from Byun et al. ISCA'20).
pub const VDD_CHP: f64 = 0.75;

/// CHP-core threshold voltage (Table 3).
pub const VTH_CHP: f64 = 0.25;

/// NoC / LLC shared voltage domain at 77 K (Table 4): V_dd.
pub const VDD_NOC_77K: f64 = 0.55;

/// NoC / LLC shared voltage domain at 77 K (Table 4): V_th.
pub const VTH_NOC_77K: f64 = 0.225;

/// Paper anchor: average semi-global wire length on die, µm (Banerjee 2001).
pub const AVG_SEMI_GLOBAL_LENGTH_UM: f64 = 900.0;

/// Paper anchor: average global wire length on die, µm (Banerjee 2001).
pub const AVG_GLOBAL_LENGTH_UM: f64 = 6_220.0;

/// Paper anchor: 2 mm global-wire NoC link takes 0.064 ns at 300 K in 45 nm
/// (CACTI-NUCA, Section 5.1) ⇒ ~4 hops/cycle at 4 GHz.
pub const LINK_DELAY_300K_NS_PER_2MM: f64 = 0.064;

/// Paper anchor: router-based NoC frequency improves only 9.3 % at 77 K
/// without voltage scaling (Section 5.1, Guideline #1).
pub const ROUTER_SPEEDUP_77K: f64 = 1.093;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_resistivity_at_300k_is_canonical() {
        assert!((RHO_PHONON_300K + RHO_RESIDUAL_BULK - 1.56).abs() < 0.1);
    }

    #[test]
    fn carnot_fraction_reproduces_cooling_overhead() {
        let co = (HOT_SIDE_K - 77.0) / (CARNOT_FRACTION * 77.0);
        assert!((co - COOLING_OVERHEAD_77K).abs() < 0.01);
    }

    #[test]
    fn repeater_anchor_consistent_with_fig5() {
        // sqrt(3.69 * 1.37) ≈ 2.25 (paper Fig. 5b semi-global repeated)
        let implied = (3.69_f64 * REPEATER_SPEEDUP_77K).sqrt();
        assert!((implied - 2.25).abs() < 0.03);
    }
}
