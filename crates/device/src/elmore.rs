//! Elmore delay analysis of RC trees, and the buffered H-tree broadcast
//! network.
//!
//! The hop-based link model (`12 hops → 1 cycle at 77 K`) abstracts the
//! CryoBus broadcast wires; this module checks that abstraction at the
//! circuit level. [`RcTree`] computes exact Elmore delays for arbitrary
//! RC trees (the first-moment bound Hspice-era sign-off used for on-chip
//! interconnect), and [`buffered_htree_broadcast_ps`] builds the actual
//! CryoBus broadcast structure — an H-tree whose branch points carry
//! cross-link switches acting as buffers — from the wire and repeater
//! models.

use crate::mosfet::{GateStyle, MosfetModel};
use crate::repeater::RepeaterOptimizer;
use crate::resistivity::ResistivityModel;
use crate::temperature::Temperature;
use crate::wire::{Wire, WireClass};

/// A node of an RC tree (index 0 is the root/driver).
#[derive(Debug, Clone, Copy, PartialEq)]
struct RcNode {
    parent: Option<usize>,
    /// Resistance from the parent to this node, Ω.
    resistance: f64,
    /// Capacitance at this node, F.
    capacitance: f64,
}

/// An RC tree with Elmore-delay queries.
///
/// ```
/// use cryowire_device::elmore::RcTree;
/// let mut tree = RcTree::new(1_000.0); // 1 kΩ driver
/// let a = tree.add_node(RcTree::ROOT, 500.0, 1e-15);
/// let _b = tree.add_node(a, 500.0, 1e-15);
/// assert!(tree.elmore_delay_ps(a) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RcTree {
    nodes: Vec<RcNode>,
}

impl RcTree {
    /// Index of the root node.
    pub const ROOT: usize = 0;

    /// Creates a tree whose root is a driver with output resistance
    /// `driver_ohm` and no self-capacitance.
    #[must_use]
    pub fn new(driver_ohm: f64) -> Self {
        RcTree {
            nodes: vec![RcNode {
                parent: None,
                resistance: driver_ohm,
                capacitance: 0.0,
            }],
        }
    }

    /// Adds a node under `parent` connected through `resistance` Ω with
    /// `capacitance` F at the node; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not an existing node.
    pub fn add_node(&mut self, parent: usize, resistance: f64, capacitance: f64) -> usize {
        assert!(parent < self.nodes.len(), "parent must exist");
        self.nodes.push(RcNode {
            parent: Some(parent),
            resistance,
            capacitance,
        });
        self.nodes.len() - 1
    }

    /// Adds a uniform distributed wire of `segments` lumped π-sections
    /// under `parent`; returns the far-end node.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero or `parent` does not exist.
    pub fn add_wire(
        &mut self,
        parent: usize,
        total_resistance: f64,
        total_capacitance: f64,
        segments: usize,
    ) -> usize {
        assert!(segments > 0, "need at least one segment");
        let r = total_resistance / segments as f64;
        let c = total_capacitance / segments as f64;
        let mut at = parent;
        for _ in 0..segments {
            at = self.add_node(at, r, c);
        }
        at
    }

    /// Total capacitance in the subtree rooted at `node`.
    fn subtree_cap(&self, node: usize) -> f64 {
        // O(n) per query; trees here are small.
        let mut total = self.nodes[node].capacitance;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.parent == Some(node) {
                total += self.subtree_cap(i);
            }
        }
        total
    }

    /// Elmore delay from the driver input to `node`, in picoseconds:
    /// `Σ_k R_k · C_downstream(k)` over the path from the root.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    #[must_use]
    pub fn elmore_delay_ps(&self, node: usize) -> f64 {
        assert!(node < self.nodes.len(), "node must exist");
        // Collect the root→node path.
        let mut path = vec![node];
        let mut at = node;
        while let Some(p) = self.nodes[at].parent {
            path.push(p);
            at = p;
        }
        path.reverse();
        let mut delay_s = 0.0;
        for &k in &path {
            delay_s += self.nodes[k].resistance * self.subtree_cap(k);
        }
        delay_s * 1e12
    }

    /// The maximum Elmore delay over all leaves, ps.
    #[must_use]
    pub fn max_leaf_delay_ps(&self) -> f64 {
        let has_child: Vec<bool> = {
            let mut v = vec![false; self.nodes.len()];
            for n in &self.nodes {
                if let Some(p) = n.parent {
                    v[p] = true;
                }
            }
            v
        };
        (0..self.nodes.len())
            .filter(|&i| !has_child[i] && i != RcTree::ROOT)
            .map(|i| self.elmore_delay_ps(i))
            .fold(0.0, f64::max)
    }
}

/// Root-to-leaf broadcast delay of the buffered CryoBus H-tree, ps.
///
/// The H-tree for `levels` levels spans `span_mm` from the center to the
/// farthest leaf; each level's segment is half the previous one's and is
/// driven by a cross-link switch acting as a buffer, with the segment
/// wire itself optimally repeated (the Section 5.2 design). The total is
/// the sum of the per-level buffered-segment delays.
#[must_use]
pub fn buffered_htree_broadcast_ps(levels: usize, span_mm: f64, t: Temperature) -> f64 {
    let mosfet = MosfetModel::industry_45nm();
    let opt = RepeaterOptimizer::new(&mosfet);
    // Segment lengths halve per level and sum to the span.
    let total: f64 = (0..levels).map(|l| 0.5f64.powi(l as i32)).sum();
    let unit_mm = span_mm / total;
    let mut delay = 0.0;
    for l in 0..levels {
        let seg_um = unit_mm * 0.5f64.powi(l as i32) * 1_000.0;
        let wire = Wire::new(WireClass::Global, seg_um.max(10.0));
        delay += opt.optimal_delay(&wire, t);
        // Switch/buffer insertion delay at the branch point.
        let buffer_ps = 6.0
            * mosfet
                .nominal_state(GateStyle::Repeater, t)
                .expect("nominal point feasible")
                .delay_factor;
        delay += buffer_ps;
    }
    delay
}

/// Elmore delay of the same H-tree **without** buffers (one monolithic RC
/// tree): shows why the dynamic link connection's switches are also
/// electrically necessary.
#[must_use]
pub fn unbuffered_htree_broadcast_ps(levels: usize, span_mm: f64, t: Temperature) -> f64 {
    let mosfet = MosfetModel::industry_45nm();
    let rho = ResistivityModel::intel_45nm();
    let total: f64 = (0..levels).map(|l| 0.5f64.powi(l as i32)).sum();
    let unit_mm = span_mm / total;

    let mut tree = RcTree::new(mosfet.r0_ohm() / 256.0);
    let mut frontier = vec![RcTree::ROOT];
    for l in 0..levels {
        let seg_um = unit_mm * 0.5f64.powi(l as i32) * 1_000.0;
        let wire = Wire::new(WireClass::Global, seg_um.max(10.0));
        let r = wire.total_resistance(&rho, t);
        let c = wire.total_capacitance();
        let mut next = Vec::new();
        for &node in &frontier {
            // Each branch point fans out to two subtrees (H-tree arms).
            for _ in 0..2 {
                next.push(tree.add_wire(node, r, c, 4));
            }
        }
        frontier = next;
    }
    tree.max_leaf_delay_ps()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elmore_matches_hand_computed_ladder() {
        // Driver 1 kΩ → R=1 kΩ, C=1 fF → R=1 kΩ, C=1 fF.
        // delay = 1k·2f + 1k·2f + 1k·1f = 5 ps... computed exactly:
        // node a: Rdrv·(Ca+Cb) + Ra·(Ca+Cb)?  Standard Elmore:
        //   t(b) = Rdrv·(Ca+Cb) + Ra·(Ca+Cb) + Rb·Cb
        //        = 1k·2f + 1k·2f + 1k·1f = 5 ps.
        let mut tree = RcTree::new(1_000.0);
        let a = tree.add_node(RcTree::ROOT, 1_000.0, 1e-15);
        let b = tree.add_node(a, 1_000.0, 1e-15);
        assert!((tree.elmore_delay_ps(b) - 5.0).abs() < 1e-9);
        // And t(a) = 1k·2f + 1k·2f = 4 ps.
        assert!((tree.elmore_delay_ps(a) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn branches_load_the_shared_path() {
        // Adding a sibling subtree must slow the original leaf (shared
        // upstream resistance sees more downstream capacitance).
        let mut tree = RcTree::new(1_000.0);
        let trunk = tree.add_node(RcTree::ROOT, 1_000.0, 1e-15);
        let leaf = tree.add_node(trunk, 1_000.0, 1e-15);
        let before = tree.elmore_delay_ps(leaf);
        let _sibling = tree.add_node(trunk, 1_000.0, 5e-15);
        let after = tree.elmore_delay_ps(leaf);
        assert!(after > before);
    }

    #[test]
    fn buffered_htree_meets_the_one_cycle_budget_at_77k() {
        // The CryoBus broadcast: 3 levels, 6 mm center-to-leaf span.
        // One 4 GHz cycle = 250 ps.
        let d = buffered_htree_broadcast_ps(3, 6.0, Temperature::liquid_nitrogen());
        assert!(
            d < 250.0,
            "buffered 77 K H-tree broadcast = {d} ps (budget 250 ps)"
        );
    }

    #[test]
    fn buffered_htree_misses_the_budget_at_300k() {
        // Fig. 20's other half: the same structure at 300 K cannot
        // broadcast in one cycle.
        let d = buffered_htree_broadcast_ps(3, 6.0, Temperature::ambient());
        assert!(
            d > 250.0,
            "300 K H-tree broadcast = {d} ps should exceed one cycle"
        );
    }

    #[test]
    fn unbuffered_tree_is_much_slower() {
        // Without the cross-link switches buffering each level, the
        // quadratic RC of the monolithic tree blows the budget even cold.
        let t77 = Temperature::liquid_nitrogen();
        let buffered = buffered_htree_broadcast_ps(3, 6.0, t77);
        let unbuffered = unbuffered_htree_broadcast_ps(3, 6.0, t77);
        assert!(
            unbuffered > 2.0 * buffered,
            "unbuffered {unbuffered} ps vs buffered {buffered} ps"
        );
    }

    #[test]
    fn elmore_agrees_with_hop_model_order_of_magnitude() {
        // The hop model says 12 hops (2 mm each) take one 250 ps cycle at
        // 77 K ⇒ ~20.8 ps per 2 mm. The repeated-wire model underlying
        // the buffered tree gives the same scale.
        let mosfet = MosfetModel::industry_45nm();
        let opt = RepeaterOptimizer::new(&mosfet);
        let wire = Wire::new(WireClass::Global, 2_000.0);
        let per_hop = opt.optimal_delay(&wire, Temperature::liquid_nitrogen());
        assert!(
            per_hop > 8.0 && per_hop < 40.0,
            "2 mm 77 K hop = {per_hop} ps"
        );
    }

    #[test]
    #[should_panic(expected = "parent must exist")]
    fn dangling_parent_rejected() {
        let mut tree = RcTree::new(1_000.0);
        let _ = tree.add_node(99, 1.0, 1e-15);
    }
}
