//! Temperature- and voltage-aware stage critical-path evaluation
//! (the cryo-pipeline model of Fig. 6, with the inter-unit wire extension).
//!
//! Each stage's 300 K decomposition scales with temperature through the
//! device models: the transistor component follows the complex-logic MOSFET
//! delay, and the wire component follows the computed unrepeated
//! semi-global forwarding-wire delay for the floorplan-derived wire length
//! (~1686 µm ⇒ 2.81x at 77 K). Voltage-scaled operating points scale the
//! full stage delay by the MOSFET voltage factor, matching the paper's
//! whole-core voltage domains.

use cryowire_device::{
    GateStyle, MosfetModel, OperatingPoint, ResistivityModel, Temperature, Wire, WireClass,
};
use cryowire_floorplan::Floorplan;

use crate::error::PipelineError;
use crate::stages::{boom_baseline_stages, Stage, StageId, StageKind};

/// Per-stage delay at an evaluated temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageDelayReport {
    /// The stage.
    pub id: StageId,
    /// Frontend or backend.
    pub kind: StageKind,
    /// Transistor component, ps.
    pub transistor_ps: f64,
    /// Wire component, ps.
    pub wire_ps: f64,
    /// Whether the stage can be further pipelined.
    pub pipelinable: bool,
}

impl StageDelayReport {
    /// Total stage delay, ps.
    #[must_use]
    pub fn total_ps(&self) -> f64 {
        self.transistor_ps + self.wire_ps
    }

    /// Wire fraction of the stage delay (0..1).
    #[must_use]
    pub fn wire_fraction(&self) -> f64 {
        self.wire_ps / self.total_ps()
    }
}

/// The pipeline critical-path model bound to device models and a floorplan.
///
/// ```
/// use cryowire_device::Temperature;
/// use cryowire_pipeline::CriticalPathModel;
///
/// let model = CriticalPathModel::boom_skylake();
/// assert!((model.frequency_ghz(Temperature::ambient()) - 4.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct CriticalPathModel {
    stages: Vec<Stage>,
    mosfet: MosfetModel,
    rho: ResistivityModel,
    floorplan: Floorplan,
}

impl CriticalPathModel {
    /// The paper's configuration: BOOM stage decomposition, Intel-45 nm
    /// device models, Skylake-like floorplan with 8 forwarding-column ALUs.
    #[must_use]
    pub fn boom_skylake() -> Self {
        CriticalPathModel {
            stages: boom_baseline_stages(),
            mosfet: MosfetModel::industry_45nm(),
            rho: ResistivityModel::intel_45nm(),
            floorplan: Floorplan::skylake_like(),
        }
    }

    /// Replaces the stage table (used by the superpipeliner).
    #[must_use]
    pub fn with_stages(mut self, stages: Vec<Stage>) -> Self {
        self.stages = stages;
        self
    }

    /// Replaces the floorplan (e.g. a 4-ALU CryoCore-width backend).
    #[must_use]
    pub fn with_floorplan(mut self, floorplan: Floorplan) -> Self {
        self.floorplan = floorplan;
        self
    }

    /// The stage table this model evaluates.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The MOSFET model in use.
    #[must_use]
    pub fn mosfet(&self) -> &MosfetModel {
        &self.mosfet
    }

    /// Transistor-delay factor at `t` relative to 300 K (< 1 when cold).
    #[must_use]
    pub fn transistor_factor(&self, t: Temperature) -> f64 {
        self.mosfet
            .nominal_state(GateStyle::ComplexLogic, t)
            .expect("nominal point feasible in validated range")
            .delay_factor
    }

    /// Wire-delay factor at `t` relative to 300 K, computed from the
    /// floorplan's forwarding wire (< 1 when cold; ≈ 1/2.81 at 77 K).
    #[must_use]
    pub fn wire_factor(&self, t: Temperature) -> f64 {
        let wire = Wire::new(
            WireClass::SemiGlobal,
            self.floorplan.forwarding_wire_length_um(),
        );
        let d300 = wire.unrepeated_delay_ps(&self.mosfet, &self.rho, Temperature::ambient());
        let dt = wire.unrepeated_delay_ps(&self.mosfet, &self.rho, t);
        dt / d300
    }

    /// Per-stage delays at `t`, nominal (uncompensated) voltages.
    #[must_use]
    pub fn stage_delays(&self, t: Temperature) -> Vec<StageDelayReport> {
        let tf = self.transistor_factor(t);
        let wf = self.wire_factor(t);
        self.stages
            .iter()
            .map(|s| StageDelayReport {
                id: s.id,
                kind: s.kind,
                transistor_ps: s.transistor_ps * tf,
                wire_ps: s.wire_ps * wf,
                pipelinable: s.pipelinable,
            })
            .collect()
    }

    /// Maximum stage delay at `t`, ps — the clock-period bound.
    #[must_use]
    pub fn max_delay_ps(&self, t: Temperature) -> f64 {
        self.stage_delays(t)
            .iter()
            .map(StageDelayReport::total_ps)
            .fold(0.0, f64::max)
    }

    /// The stage bounding the clock at `t`.
    #[must_use]
    pub fn bottleneck(&self, t: Temperature) -> StageDelayReport {
        self.stage_delays(t)
            .into_iter()
            .max_by(|a, b| a.total_ps().total_cmp(&b.total_ps()))
            .expect("stage table is non-empty")
    }

    /// Clock frequency at `t` and nominal voltage, GHz.
    #[must_use]
    pub fn frequency_ghz(&self, t: Temperature) -> f64 {
        1_000.0 / self.max_delay_ps(t)
    }

    /// Clock frequency at `t` with a voltage-scaled operating point, GHz.
    ///
    /// The whole stage delay scales with the MOSFET voltage factor —
    /// the paper places the entire core in one scaled voltage domain.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError::Device`] for infeasible points.
    pub fn frequency_ghz_at(
        &self,
        t: Temperature,
        point: OperatingPoint,
    ) -> Result<f64, PipelineError> {
        let nominal = self
            .mosfet
            .nominal_state(GateStyle::ComplexLogic, t)?
            .delay_factor;
        let scaled = self.mosfet.state(t, point.v_dd, point.v_th)?.delay_factor;
        Ok(self.frequency_ghz(t) * nominal / scaled)
    }
}

impl Default for CriticalPathModel {
    fn default() -> Self {
        CriticalPathModel::boom_skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CriticalPathModel {
        CriticalPathModel::boom_skylake()
    }

    #[test]
    fn baseline_300k_is_4ghz() {
        assert!((model().frequency_ghz(Temperature::ambient()) - 4.0).abs() < 0.01);
    }

    #[test]
    fn bottleneck_moves_to_frontend_at_77k() {
        // 77 K Observation #1.
        let m = model();
        let b300 = m.bottleneck(Temperature::ambient());
        let b77 = m.bottleneck(Temperature::liquid_nitrogen());
        assert_eq!(b300.kind, StageKind::Backend);
        assert_eq!(b77.kind, StageKind::Frontend);
    }

    #[test]
    fn fig13_max_delay_reduction_at_77k() {
        // Fig. 13: the maximum critical-path delay shrinks only modestly
        // (paper: ~19 %; our calibration: ~16 %) because the frontend is
        // transistor-dominated.
        let m = model();
        let r =
            m.max_delay_ps(Temperature::liquid_nitrogen()) / m.max_delay_ps(Temperature::ambient());
        assert!(r > 0.78 && r < 0.88, "77 K / 300 K max delay ratio = {r}");
    }

    #[test]
    fn backend_forwarding_stages_collapse_at_77k() {
        // 77 K Observation #2: forwarding-stage delays fall well below the
        // frontend's.
        let m = model();
        let delays = m.stage_delays(Temperature::liquid_nitrogen());
        let get = |id: StageId| {
            delays
                .iter()
                .find(|d| d.id == id)
                .expect("stage present")
                .total_ps()
        };
        assert!(get(StageId::ExecuteBypass) < get(StageId::DecodeRename));
        assert!(get(StageId::DataReadFromBypass) < get(StageId::Fetch3));
    }

    #[test]
    fn wire_factor_at_77k_matches_anchor() {
        let wf = model().wire_factor(Temperature::liquid_nitrogen());
        assert!(
            (1.0 / wf - 2.81).abs() < 0.15,
            "wire speedup = {}",
            1.0 / wf
        );
    }

    #[test]
    fn voltage_scaling_raises_frequency() {
        let m = model();
        let t77 = Temperature::liquid_nitrogen();
        let base = m.frequency_ghz(t77);
        let scaled = m.frequency_ghz_at(t77, OperatingPoint::cryosp()).unwrap();
        assert!(
            scaled / base > 1.1,
            "voltage scaling gain = {}",
            scaled / base
        );
    }

    #[test]
    fn delays_fall_monotonically_with_temperature() {
        let m = model();
        let mut last = f64::INFINITY;
        for k in [300.0, 200.0, 135.0, 100.0, 77.0] {
            let d = m.max_delay_ps(Temperature::new(k).unwrap());
            assert!(d < last);
            last = d;
        }
    }

    #[test]
    fn stage_reports_preserve_order_and_count() {
        let m = model();
        let delays = m.stage_delays(Temperature::ambient());
        assert_eq!(delays.len(), 13);
        assert_eq!(delays[0].id, StageId::Fetch1);
        assert_eq!(delays[12].id, StageId::DCacheAccess);
    }
}
