//! IPC modelling for pipeline-depth and issue-width changes (the Gem5
//! substitute behind Table 3's IPC column).
//!
//! Two effects matter for the paper's designs:
//!
//! * **Depth**: each added frontend stage lengthens the branch
//!   misprediction pipeline-refill, costing
//!   `branch_fraction × mispredict_rate` cycles per instruction. The paper
//!   measured 4.2 % IPC loss for three added stages on PARSEC 2.1; with the
//!   calibrated 20 % branch fraction and 7 % misprediction rate our model
//!   reproduces it.
//! * **Width/structure**: CryoCore halves the issue width and shrinks the
//!   OoO structures, which costs ~7 % IPC (Table 3: CHP-core 0.93).

/// Analytic IPC model calibrated on the paper's PARSEC results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpcModel {
    /// Fraction of instructions that are branches.
    pub branch_fraction: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// Baseline CPI of the 8-wide core (Table 3 normalizes IPC to 1.0).
    pub base_cpi: f64,
    /// IPC factor of halving the issue width and OoO structures
    /// (Table 3: 0.93 for CHP-core's CryoCore microarchitecture).
    pub width_halving_factor: f64,
}

impl IpcModel {
    /// Calibration that reproduces the paper's Table 3 IPC column.
    #[must_use]
    pub fn parsec_calibrated() -> Self {
        IpcModel {
            branch_fraction: 0.20,
            mispredict_rate: 0.07,
            base_cpi: 1.0,
            width_halving_factor: 0.93,
        }
    }

    /// IPC factor (≤ 1) after adding `added_stages` frontend stages.
    ///
    /// Each added stage costs one extra cycle on every mispredicted branch.
    #[must_use]
    pub fn depth_penalty_factor(&self, added_stages: usize) -> f64 {
        let extra_cpi =
            added_stages as f64 * self.branch_fraction * self.mispredict_rate * self.base_cpi;
        self.base_cpi / (self.base_cpi + extra_cpi)
    }

    /// IPC factor for an issue width change from `from_width` to
    /// `to_width`, interpolating the calibrated halving factor.
    ///
    /// # Panics
    ///
    /// Panics if either width is zero.
    #[must_use]
    pub fn width_factor(&self, from_width: usize, to_width: usize) -> f64 {
        assert!(
            from_width > 0 && to_width > 0,
            "issue widths must be positive"
        );
        if to_width >= from_width {
            return 1.0;
        }
        // IPC loss grows with log2 of the width reduction; one halving is
        // the calibrated anchor.
        let halvings = (from_width as f64 / to_width as f64).log2();
        self.width_halving_factor.powf(halvings)
    }

    /// Combined IPC (normalized to the 8-wide, baseline-depth core) for a
    /// design with `added_stages` extra frontend stages at `width`-issue.
    #[must_use]
    pub fn ipc(&self, added_stages: usize, width: usize) -> f64 {
        self.depth_penalty_factor(added_stages) * self.width_factor(8, width)
    }
}

impl Default for IpcModel {
    fn default() -> Self {
        IpcModel::parsec_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_added_stages_cost_about_4_percent() {
        // Section 4.4: 4.2 % IPC reduction from the Gem5 PARSEC runs.
        let m = IpcModel::parsec_calibrated();
        let f = m.depth_penalty_factor(3);
        assert!(
            (1.0 - f - 0.042).abs() < 0.01,
            "depth penalty = {}",
            1.0 - f
        );
    }

    #[test]
    fn table3_ipc_column() {
        let m = IpcModel::parsec_calibrated();
        // 77K Superpipeline (8-wide, +3 stages): 0.96.
        assert!((m.ipc(3, 8) - 0.96).abs() < 0.01);
        // CHP-core (4-wide, baseline depth): 0.93.
        assert!((m.ipc(0, 4) - 0.93).abs() < 0.01);
        // CryoSP (4-wide, +3 stages): 0.90.
        assert!((m.ipc(3, 4) - 0.90).abs() < 0.015);
        // 300 K baseline: 1.0.
        assert!((m.ipc(0, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_penalty_for_widening() {
        let m = IpcModel::parsec_calibrated();
        assert_eq!(m.width_factor(4, 8), 1.0);
    }

    #[test]
    fn deeper_is_never_faster() {
        let m = IpcModel::parsec_calibrated();
        let mut last = 1.1;
        for added in 0..8 {
            let f = m.depth_penalty_factor(added);
            assert!(f < last);
            last = f;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let m = IpcModel::parsec_calibrated();
        let _ = m.width_factor(8, 0);
    }
}
