//! Frontend superpipelining at 77 K (Section 4.4).
//!
//! The methodology, exactly as the paper states it:
//!
//! 1. among the un-pipelinable backend stages, take the longest delay at
//!    the target temperature as the **target latency** (execute bypass at
//!    77 K);
//! 2. split every *pipelinable frontend* stage whose delay exceeds the
//!    target into two stages (inserting a flip-flop, which adds a fixed
//!    sequencing overhead);
//! 3. accept the transformation if the frequency gain exceeds the IPC
//!    loss from the deeper front end.

use cryowire_device::Temperature;

use crate::critical_path::{CriticalPathModel, StageDelayReport};
use crate::ipc::IpcModel;
use crate::stages::{Stage, StageKind};

/// Flip-flop sequencing overhead (setup + clk-to-q) at 300 K, ps.
/// Scales with the transistor factor when cooled.
pub const FLIP_FLOP_OVERHEAD_PS: f64 = 15.0;

/// Result of applying the superpipelining methodology at one temperature.
#[derive(Debug, Clone)]
pub struct SuperpipelineResult {
    /// The stages that were split (paper: fetch1, fetch3, decode & rename).
    pub split_stages: Vec<StageDelayReport>,
    /// The target latency (longest un-pipelinable backend delay), ps.
    pub target_latency_ps: f64,
    /// Maximum stage delay after splitting, ps.
    pub max_delay_ps: f64,
    /// Clock frequency after splitting, GHz.
    pub frequency_ghz: f64,
    /// Number of pipeline stages added.
    pub added_stages: usize,
    /// IPC relative to the unsplit pipeline at equal frequency
    /// (Table 3 methodology: IPC compared at 4 GHz).
    pub ipc_factor: f64,
}

impl SuperpipelineResult {
    /// Net performance factor versus the unsplit pipeline at the same
    /// temperature: frequency gain × IPC factor.
    #[must_use]
    pub fn net_gain_over(&self, unsplit_frequency_ghz: f64) -> f64 {
        self.frequency_ghz / unsplit_frequency_ghz * self.ipc_factor
    }
}

/// Applies the Section 4.4 methodology to a critical-path model.
#[derive(Debug, Clone)]
pub struct Superpipeliner {
    model: CriticalPathModel,
    ipc: IpcModel,
    ff_overhead_ps: f64,
}

impl Superpipeliner {
    /// Creates a superpipeliner over `model` with the default IPC model
    /// and flip-flop overhead.
    #[must_use]
    pub fn new(model: &CriticalPathModel) -> Self {
        Superpipeliner {
            model: model.clone(),
            ipc: IpcModel::parsec_calibrated(),
            ff_overhead_ps: FLIP_FLOP_OVERHEAD_PS,
        }
    }

    /// Overrides the flip-flop overhead (300 K ps).
    #[must_use]
    pub fn with_ff_overhead_ps(mut self, ps: f64) -> Self {
        self.ff_overhead_ps = ps;
        self
    }

    /// The target latency at `t`: the longest un-pipelinable backend stage.
    #[must_use]
    pub fn target_latency_ps(&self, t: Temperature) -> f64 {
        self.model
            .stage_delays(t)
            .iter()
            .filter(|s| !s.pipelinable)
            .map(StageDelayReport::total_ps)
            .fold(0.0, f64::max)
    }

    /// Runs the superpipelining methodology at temperature `t`.
    #[must_use]
    pub fn superpipeline(&self, t: Temperature) -> SuperpipelineResult {
        let target = self.target_latency_ps(t);
        let delays = self.model.stage_delays(t);
        let ff = self.ff_overhead_ps * self.model.transistor_factor(t);

        let mut split = Vec::new();
        let mut max_delay: f64 = 0.0;
        for d in &delays {
            let total = d.total_ps();
            if d.pipelinable && d.kind == StageKind::Frontend && total > target {
                // Split into two stages; each gets half the logic plus a
                // flip-flop boundary.
                let half = total / 2.0 + ff;
                split.push(*d);
                max_delay = max_delay.max(half);
            } else {
                max_delay = max_delay.max(total);
            }
        }

        let added = split.len();
        SuperpipelineResult {
            split_stages: split,
            target_latency_ps: target,
            max_delay_ps: max_delay,
            frequency_ghz: 1_000.0 / max_delay,
            added_stages: added,
            ipc_factor: self.ipc.depth_penalty_factor(added),
        }
    }

    /// Produces the post-split stage table (for feeding back into a
    /// [`CriticalPathModel`], e.g. for the Fig. 14 per-stage view).
    ///
    /// Split stages are emitted as two half-delay stages with the flip-flop
    /// overhead folded into their transistor component.
    #[must_use]
    pub fn superpipelined_stages(&self, t: Temperature) -> Vec<Stage> {
        let target = self.target_latency_ps(t);
        let delays = self.model.stage_delays(t);
        let tf = self.model.transistor_factor(t);
        let wf = self.model.wire_factor(t);
        let mut out = Vec::new();
        for (orig, d) in self.model.stages().iter().zip(delays.iter()) {
            let total = d.total_ps();
            if d.pipelinable && d.kind == StageKind::Frontend && total > target {
                // Emit two half stages in 300 K-referenced units.
                for _ in 0..2 {
                    out.push(Stage {
                        transistor_ps: orig.transistor_ps / 2.0 + self.ff_overhead_ps,
                        wire_ps: orig.wire_ps / 2.0,
                        ..*orig
                    });
                }
            } else {
                out.push(*orig);
            }
        }
        // Invariant: the 300 K-referenced table rescales to the same 77 K
        // delays (tf/wf applied by the caller's CriticalPathModel).
        debug_assert!(tf > 0.0 && wf > 0.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::StageId;

    fn sp() -> Superpipeliner {
        Superpipeliner::new(&CriticalPathModel::boom_skylake())
    }

    #[test]
    fn target_is_execute_bypass_at_77k() {
        let s = sp();
        let t77 = Temperature::liquid_nitrogen();
        let target = s.target_latency_ps(t77);
        let model = CriticalPathModel::boom_skylake();
        let exec = model
            .stage_delays(t77)
            .iter()
            .find(|d| d.id == StageId::ExecuteBypass)
            .unwrap()
            .total_ps();
        assert!(
            (target - exec).abs() < 1e-9,
            "target should be execute bypass"
        );
    }

    #[test]
    fn paper_splits_fetch1_fetch3_decode_rename() {
        let result = sp().superpipeline(Temperature::liquid_nitrogen());
        let ids: Vec<StageId> = result.split_stages.iter().map(|s| s.id).collect();
        assert_eq!(result.added_stages, 3, "split stages: {ids:?}");
        assert!(ids.contains(&StageId::Fetch1));
        assert!(ids.contains(&StageId::Fetch3));
        assert!(ids.contains(&StageId::DecodeRename));
    }

    #[test]
    fn frequency_gain_matches_section_4_4() {
        // Paper: +61 % vs 300 K baseline and +38 % vs 77 K baseline.
        let model = CriticalPathModel::boom_skylake();
        let result = sp().superpipeline(Temperature::liquid_nitrogen());
        let f300 = model.frequency_ghz(Temperature::ambient());
        let f77 = model.frequency_ghz(Temperature::liquid_nitrogen());
        let gain300 = result.frequency_ghz / f300;
        let gain77 = result.frequency_ghz / f77;
        assert!((gain300 - 1.61).abs() < 0.08, "gain vs 300 K = {gain300}");
        assert!((gain77 - 1.38).abs() < 0.08, "gain vs 77 K = {gain77}");
    }

    #[test]
    fn superpipelined_frequency_near_6_4_ghz() {
        let result = sp().superpipeline(Temperature::liquid_nitrogen());
        assert!(
            (result.frequency_ghz - 6.4).abs() < 0.3,
            "superpipelined frequency = {} GHz, Table 3 says 6.4",
            result.frequency_ghz
        );
    }

    #[test]
    fn ipc_penalty_is_small() {
        // Paper: the three added stages cost only ~4.2 % IPC.
        let result = sp().superpipeline(Temperature::liquid_nitrogen());
        assert!(
            (1.0 - result.ipc_factor - 0.042).abs() < 0.02,
            "IPC penalty = {}",
            1.0 - result.ipc_factor
        );
    }

    #[test]
    fn superpipelining_meaningless_at_300k() {
        // At 300 K the un-pipelinable backend is the bottleneck, so
        // splitting the frontend buys (almost) nothing.
        let s = sp();
        let model = CriticalPathModel::boom_skylake();
        let result = s.superpipeline(Temperature::ambient());
        let gain = result.frequency_ghz / model.frequency_ghz(Temperature::ambient());
        assert!(gain < 1.05, "300 K superpipelining gain = {gain}");
    }

    #[test]
    fn net_gain_positive_at_77k() {
        let model = CriticalPathModel::boom_skylake();
        let result = sp().superpipeline(Temperature::liquid_nitrogen());
        let f77 = model.frequency_ghz(Temperature::liquid_nitrogen());
        assert!(result.net_gain_over(f77) > 1.25);
    }

    #[test]
    fn split_table_has_three_more_stages() {
        let s = sp();
        let table = s.superpipelined_stages(Temperature::liquid_nitrogen());
        assert_eq!(table.len(), 16); // 13 + 3 splits
    }

    #[test]
    fn fig14_split_table_reproduces_frequency() {
        // Feeding the split table back into a CriticalPathModel must give
        // the same 77 K frequency as the direct superpipeline() result.
        let s = sp();
        let t77 = Temperature::liquid_nitrogen();
        let result = s.superpipeline(t77);
        let model2 = CriticalPathModel::boom_skylake().with_stages(s.superpipelined_stages(t77));
        let f2 = model2.frequency_ghz(t77);
        assert!(
            (f2 - result.frequency_ghz).abs() / result.frequency_ghz < 0.02,
            "direct = {}, via table = {}",
            result.frequency_ghz,
            f2
        );
    }
}
