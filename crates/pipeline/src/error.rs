//! Error types for the pipeline-model crate.

use std::error::Error;
use std::fmt;

/// Errors produced by pipeline models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// A stage-splitting request targeted a stage the paper (and IPC
    /// analysis) marks as un-pipelinable.
    UnpipelinableStage {
        /// Display name of the offending stage.
        stage: &'static str,
    },
    /// The requested core configuration is internally inconsistent
    /// (e.g. zero issue width).
    InvalidCoreConfig {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// A device-model error surfaced while evaluating the pipeline.
    Device(cryowire_device::DeviceError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UnpipelinableStage { stage } => {
                write!(
                    f,
                    "stage `{stage}` cannot be pipelined without breaking back-to-back execution"
                )
            }
            PipelineError::InvalidCoreConfig { reason } => {
                write!(f, "invalid core configuration: {reason}")
            }
            PipelineError::Device(e) => write!(f, "device model error: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cryowire_device::DeviceError> for PipelineError {
    fn from(e: cryowire_device::DeviceError) -> Self {
        PipelineError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PipelineError::UnpipelinableStage {
            stage: "execute bypass",
        };
        assert!(e.to_string().contains("execute bypass"));
    }

    #[test]
    fn device_error_wraps_with_source() {
        let inner = cryowire_device::DeviceError::InvalidVoltage {
            v_dd: 1.0,
            v_th: 2.0,
        };
        let e = PipelineError::from(inner);
        assert!(Error::source(&e).is_some());
    }
}
