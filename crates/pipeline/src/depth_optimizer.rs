//! Generalized pipelining-depth optimization.
//!
//! The paper splits each over-target frontend stage into exactly two
//! (Section 4.4). This module generalizes the transform — any pipelinable
//! frontend stage may be cut into `k` pieces — and searches for the
//! performance-optimal depth at a given temperature, weighing clock gain
//! against the IPC cost of a deeper refill path. It confirms the paper's
//! design point: at 77 K the 2-way split of the three bottleneck stages
//! is (near-)optimal, and at 300 K no splitting is worthwhile.

use cryowire_device::Temperature;

use crate::critical_path::CriticalPathModel;
use crate::ipc::IpcModel;
use crate::stages::StageKind;
use crate::superpipeline::FLIP_FLOP_OVERHEAD_PS;

/// One evaluated depth configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthPoint {
    /// Maximum split factor applied to over-target frontend stages.
    pub max_split: usize,
    /// Stages added relative to the baseline pipeline.
    pub added_stages: usize,
    /// Achieved clock, GHz.
    pub frequency_ghz: f64,
    /// IPC factor relative to the baseline depth.
    pub ipc_factor: f64,
    /// Net performance factor (frequency × IPC), normalized to the
    /// unsplit pipeline at the same temperature.
    pub net_performance: f64,
}

/// Searches split factors 1..=`max_split` at temperature `t`.
#[must_use]
pub fn sweep_depths(
    model: &CriticalPathModel,
    t: Temperature,
    max_split: usize,
) -> Vec<DepthPoint> {
    let ipc = IpcModel::parsec_calibrated();
    let tf = model.transistor_factor(t);
    let ff = FLIP_FLOP_OVERHEAD_PS * tf;
    let delays = model.stage_delays(t);
    let base_freq = model.frequency_ghz(t);

    // Target latency: the longest un-pipelinable stage.
    let target = delays
        .iter()
        .filter(|d| !d.pipelinable)
        .map(|d| d.total_ps())
        .fold(0.0, f64::max);

    (1..=max_split.max(1))
        .map(|split| {
            let mut max_delay: f64 = 0.0;
            let mut added = 0;
            for d in &delays {
                let total = d.total_ps();
                if d.pipelinable && d.kind == StageKind::Frontend && total > target && split > 1 {
                    // Choose the smallest cut count (≤ split) that gets
                    // under the target, if any.
                    let mut best = total;
                    let mut cuts = 1;
                    for k in 2..=split {
                        let piece = total / k as f64 + ff;
                        if piece < best {
                            best = piece;
                            cuts = k;
                        }
                        if piece <= target {
                            break;
                        }
                    }
                    added += cuts - 1;
                    max_delay = max_delay.max(best);
                } else {
                    max_delay = max_delay.max(total);
                }
            }
            let frequency_ghz = 1_000.0 / max_delay;
            let ipc_factor = ipc.depth_penalty_factor(added);
            DepthPoint {
                max_split: split,
                added_stages: added,
                frequency_ghz,
                ipc_factor,
                net_performance: frequency_ghz / base_freq * ipc_factor,
            }
        })
        .collect()
}

/// The performance-optimal point of the sweep.
///
/// # Panics
///
/// Panics if `max_split` is zero.
#[must_use]
pub fn optimal_depth(model: &CriticalPathModel, t: Temperature, max_split: usize) -> DepthPoint {
    *sweep_depths(model, t, max_split)
        .iter()
        .max_by(|a, b| a.net_performance.total_cmp(&b.net_performance))
        .expect("sweep is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_is_near_optimal_at_77k() {
        // The 2-way split must capture (almost) all of the benefit —
        // deeper cuts run into the backend target and only add IPC cost.
        let model = CriticalPathModel::boom_skylake();
        let t77 = Temperature::liquid_nitrogen();
        let best = optimal_depth(&model, t77, 4);
        let two_way = &sweep_depths(&model, t77, 4)[1];
        assert!(
            two_way.net_performance > 0.97 * best.net_performance,
            "2-way split at {} vs best {} ({}-way)",
            two_way.net_performance,
            best.net_performance,
            best.max_split
        );
        assert!(
            two_way.net_performance > 1.25,
            "77 K splitting must pay off"
        );
    }

    #[test]
    fn no_split_wins_at_300k() {
        // 300 K Observation #2 restated: the optimizer should find that
        // splitting buys (essentially) nothing at room temperature.
        let model = CriticalPathModel::boom_skylake();
        let pts = sweep_depths(&model, Temperature::ambient(), 4);
        let unsplit = pts[0].net_performance;
        for p in &pts {
            assert!(
                p.net_performance <= unsplit * 1.03,
                "{}-way split should not win at 300 K ({} vs {unsplit})",
                p.max_split,
                p.net_performance
            );
        }
    }

    #[test]
    fn deeper_splits_monotone_frequency_but_not_performance() {
        let model = CriticalPathModel::boom_skylake();
        let pts = sweep_depths(&model, Temperature::liquid_nitrogen(), 6);
        for pair in pts.windows(2) {
            assert!(pair[1].frequency_ghz >= pair[0].frequency_ghz - 1e-9);
        }
        // IPC strictly falls once stages are added.
        assert!(pts.last().unwrap().ipc_factor <= pts[0].ipc_factor);
    }

    #[test]
    fn added_stage_counts_are_sane() {
        let model = CriticalPathModel::boom_skylake();
        let pts = sweep_depths(&model, Temperature::liquid_nitrogen(), 2);
        assert_eq!(pts[0].added_stages, 0);
        assert_eq!(pts[1].added_stages, 3); // fetch1, fetch3, decode&rename
    }
}
