//! The 13 representative BOOM pipeline stages and their 300 K critical-path
//! decomposition (Fig. 11 / Fig. 12).
//!
//! Each stage carries a transistor-delay and a wire-delay component at
//! 300 K and nominal voltage. The decomposition is calibrated to the
//! paper's published observations:
//!
//! * the three longest stages are the backend forwarding stages
//!   (*execute bypass*, *writeback*, *data read from bypass*), with
//!   ~57.6 % average wire portion (Fig. 2);
//! * backend stages average ~45 % wire portion, frontend ~19 % (300 K
//!   Observation #1);
//! * at 77 K the transistor-dominant frontend (*fetch1*, *fetch3*,
//!   *decode & rename*) becomes the bottleneck (77 K Observation #1).
//!
//! The 300 K maximum stage delay is 250 ps, i.e. the paper's 4.0 GHz
//! Skylake-like baseline.

use std::fmt;

/// Whether a stage belongs to the frontend or the backend of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Fetch/decode/rename stages (upper half of Fig. 11).
    Frontend,
    /// Issue/execute/memory stages (lower half of Fig. 11).
    Backend,
}

/// Identifier of one of the 13 representative stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StageId {
    /// BTB access + fast 1-cycle branch prediction.
    Fetch1,
    /// Instruction-cache access.
    Fetch2,
    /// Branch checking (branch decoder + address checker).
    Fetch3,
    /// Instruction decode + rename dependency check.
    DecodeRename,
    /// Rename map-table access + dispatch.
    RenameDispatch,
    /// Integer issue-queue wakeup & select (CAM).
    WakeupSelectInt,
    /// Floating-point issue-queue wakeup & select.
    WakeupSelectFp,
    /// Operand read from register file/bypass network.
    DataReadFromBypass,
    /// Execute + bypass of the result to dependents.
    ExecuteBypass,
    /// Result write-back over the forwarding wires to the register file.
    Writeback,
    /// Wakeup of waiting instructions from write-back.
    WakeupFromWriteback,
    /// Load-store-queue search (CAM).
    Lsq,
    /// Data-cache access.
    DCacheAccess,
}

impl StageId {
    /// All 13 stages in pipeline order.
    pub const ALL: [StageId; 13] = [
        StageId::Fetch1,
        StageId::Fetch2,
        StageId::Fetch3,
        StageId::DecodeRename,
        StageId::RenameDispatch,
        StageId::WakeupSelectInt,
        StageId::WakeupSelectFp,
        StageId::DataReadFromBypass,
        StageId::ExecuteBypass,
        StageId::Writeback,
        StageId::WakeupFromWriteback,
        StageId::Lsq,
        StageId::DCacheAccess,
    ];

    /// Human-readable name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StageId::Fetch1 => "fetch1",
            StageId::Fetch2 => "fetch2",
            StageId::Fetch3 => "fetch3",
            StageId::DecodeRename => "decode & rename",
            StageId::RenameDispatch => "rename & dispatch",
            StageId::WakeupSelectInt => "wakeup & select (int)",
            StageId::WakeupSelectFp => "wakeup & select (fp)",
            StageId::DataReadFromBypass => "data read from bypass",
            StageId::ExecuteBypass => "execute bypass",
            StageId::Writeback => "writeback",
            StageId::WakeupFromWriteback => "wakeup from writeback",
            StageId::Lsq => "LSQ",
            StageId::DCacheAccess => "D-cache access",
        }
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One pipeline stage with its 300 K critical-path decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// Which stage this is.
    pub id: StageId,
    /// Frontend or backend.
    pub kind: StageKind,
    /// Transistor (logic) component of the 300 K critical path, ps.
    pub transistor_ps: f64,
    /// Wire component of the 300 K critical path, ps.
    pub wire_ps: f64,
    /// Whether further pipelining of this stage is possible without
    /// breaking back-to-back execution of dependent instructions
    /// (300 K Observation #2).
    pub pipelinable: bool,
    /// Whether the stage's wire component is the long data-forwarding wire
    /// spanning the ALU/register-file column.
    pub uses_forwarding_wire: bool,
}

impl Stage {
    /// Total 300 K critical-path delay, ps.
    #[must_use]
    pub fn total_ps(&self) -> f64 {
        self.transistor_ps + self.wire_ps
    }

    /// Wire fraction of the 300 K critical path (0..1).
    #[must_use]
    pub fn wire_fraction(&self) -> f64 {
        self.wire_ps / self.total_ps()
    }
}

/// Builds the calibrated 13-stage baseline table.
///
/// Delays are in picoseconds at 300 K, nominal voltage; the 250 ps maximum
/// (execute bypass) corresponds to the 4.0 GHz baseline of Table 3.
#[must_use]
pub fn boom_baseline_stages() -> Vec<Stage> {
    let mk = |id, kind, total: f64, wire_frac: f64, pipelinable, fwd| Stage {
        id,
        kind,
        transistor_ps: total * (1.0 - wire_frac),
        wire_ps: total * wire_frac,
        pipelinable,
        uses_forwarding_wire: fwd,
    };
    use StageId as S;
    use StageKind::{Backend, Frontend};
    vec![
        mk(S::Fetch1, Frontend, 232.5, 0.12, true, false),
        mk(S::Fetch2, Frontend, 200.0, 0.30, true, false),
        mk(S::Fetch3, Frontend, 240.0, 0.10, true, false),
        mk(S::DecodeRename, Frontend, 237.5, 0.08, true, false),
        mk(S::RenameDispatch, Frontend, 212.5, 0.45, true, false),
        mk(S::WakeupSelectInt, Backend, 220.0, 0.42, false, false),
        mk(S::WakeupSelectFp, Backend, 205.0, 0.42, false, false),
        mk(S::DataReadFromBypass, Backend, 242.5, 0.58, false, true),
        mk(S::ExecuteBypass, Backend, 250.0, 0.55, false, true),
        mk(S::Writeback, Backend, 245.0, 0.60, false, true),
        mk(S::WakeupFromWriteback, Backend, 225.0, 0.46, false, true),
        mk(S::Lsq, Backend, 215.0, 0.44, false, false),
        mk(S::DCacheAccess, Backend, 200.0, 0.30, true, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_stages() {
        assert_eq!(boom_baseline_stages().len(), 13);
        assert_eq!(StageId::ALL.len(), 13);
    }

    #[test]
    fn max_delay_is_250ps_execute_bypass() {
        // 250 ps ⇒ the paper's 4.0 GHz 300 K baseline.
        let stages = boom_baseline_stages();
        let max = stages
            .iter()
            .max_by(|a, b| a.total_ps().total_cmp(&b.total_ps()))
            .unwrap();
        assert_eq!(max.id, StageId::ExecuteBypass);
        assert!((max.total_ps() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn fig2_forwarding_stages_wire_portion() {
        // Fig. 2: writeback / execute bypass / data read from bypass carry
        // ~57.6 % wire on average.
        let stages = boom_baseline_stages();
        let pick = [
            StageId::Writeback,
            StageId::ExecuteBypass,
            StageId::DataReadFromBypass,
        ];
        let avg: f64 = stages
            .iter()
            .filter(|s| pick.contains(&s.id))
            .map(Stage::wire_fraction)
            .sum::<f64>()
            / 3.0;
        assert!((avg - 0.576).abs() < 0.02, "avg wire fraction = {avg}");
    }

    #[test]
    fn backend_wire_portion_exceeds_frontend() {
        // 300 K Observation #1: backend ~45 %, frontend ~19 %.
        let stages = boom_baseline_stages();
        let avg = |kind: StageKind| {
            let v: Vec<f64> = stages
                .iter()
                .filter(|s| s.kind == kind)
                .map(Stage::wire_fraction)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let fe = avg(StageKind::Frontend);
        let be = avg(StageKind::Backend);
        assert!((fe - 0.19).abs() < 0.035, "frontend wire portion = {fe}");
        assert!((be - 0.45).abs() < 0.035, "backend wire portion = {be}");
    }

    #[test]
    fn backend_forwarding_stages_are_the_300k_bottleneck() {
        // 300 K Observation #2.
        let stages = boom_baseline_stages();
        let mut sorted: Vec<&Stage> = stages.iter().collect();
        sorted.sort_by(|a, b| b.total_ps().total_cmp(&a.total_ps()));
        let top3: Vec<StageId> = sorted.iter().take(3).map(|s| s.id).collect();
        assert!(top3.contains(&StageId::ExecuteBypass));
        assert!(top3.contains(&StageId::Writeback));
        assert!(top3.contains(&StageId::DataReadFromBypass));
    }

    #[test]
    fn forwarding_stages_marked_unpipelinable() {
        for s in boom_baseline_stages() {
            if s.uses_forwarding_wire {
                assert!(
                    !s.pipelinable,
                    "{} uses forwarding wires and must stay single-cycle",
                    s.id
                );
            }
        }
    }
}
