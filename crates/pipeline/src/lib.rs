//! # cryowire-pipeline
//!
//! Cryogenic CPU-pipeline performance modelling and the CryoSP design
//! (Sections 3 and 4 of the paper).
//!
//! The crate models the 13 representative stages of the BOOM/Skylake-like
//! out-of-order pipeline (Fig. 11), decomposing each stage's critical path
//! into a transistor and a wire component. Cooling scales the two
//! components differently (transistors ~8 %, semi-global forwarding wires
//! ~2.8x at 77 K), which moves the frequency bottleneck from the backend
//! data-forwarding stages to the frontend — the key observation enabling
//! the frontend superpipelining that defines CryoSP.
//!
//! ```
//! use cryowire_device::Temperature;
//! use cryowire_pipeline::{CriticalPathModel, Superpipeliner};
//!
//! let model = CriticalPathModel::boom_skylake();
//! let base_300 = model.frequency_ghz(Temperature::ambient());
//! let sp = Superpipeliner::new(&model).superpipeline(Temperature::liquid_nitrogen());
//! assert!(sp.frequency_ghz / base_300 > 1.5); // ~+61 % (Section 4.4)
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cores;
pub mod critical_path;
pub mod depth_optimizer;
pub mod error;
pub mod ipc;
pub mod stages;
pub mod superpipeline;
pub mod validation;

pub use cores::{CoreDesign, CoreSpec};
pub use critical_path::{CriticalPathModel, StageDelayReport};
pub use depth_optimizer::{optimal_depth, sweep_depths, DepthPoint};
pub use error::PipelineError;
pub use ipc::IpcModel;
pub use stages::{Stage, StageId, StageKind};
pub use superpipeline::{SuperpipelineResult, Superpipeliner};
pub use validation::{NodeScaling, TechnologyNode, ValidationHarness, ValidationReport};
