//! Model validation against the paper's 135 K measurements
//! (Section 3.2, Fig. 8/9/10, Table 2).
//!
//! The paper validates by cooling commodity boards to 135 K with an LN
//! evaporator and measuring the maximum stable core and uncore frequency.
//! We cannot run that experiment, so the "measured" side of this harness
//! is the paper's published measurement (pipeline: +12.1 % at 135 K on the
//! 14 nm Skylake part) and its stated router-model error bound (≤ 2.8 %).
//! The *model* side is computed live from our critical-path model, with
//! ITRS-style node scaling projecting the 45 nm model onto 32/22/14 nm
//! parts as the paper describes.

use cryowire_device::{GateStyle, MosfetModel, Temperature};

use crate::critical_path::CriticalPathModel;

/// The CPUs used for validation (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechnologyNode {
    /// 32 nm Sandy Bridge (i7-2700K, GA-Z77X-UD3H).
    Nm32,
    /// 22 nm Haswell (i7-4790K, GA-Z97X-UD5H).
    Nm22,
    /// 14 nm Skylake (i5-6600K, GA-Z170X-Gaming 7).
    Nm14,
}

impl TechnologyNode {
    /// All validation nodes, oldest first.
    pub const ALL: [TechnologyNode; 3] = [
        TechnologyNode::Nm32,
        TechnologyNode::Nm22,
        TechnologyNode::Nm14,
    ];

    /// The CPU model used for this node (Table 2).
    #[must_use]
    pub fn cpu_model(self) -> &'static str {
        match self {
            TechnologyNode::Nm32 => "i7-2700K (Sandy Bridge)",
            TechnologyNode::Nm22 => "i7-4790K (Haswell)",
            TechnologyNode::Nm14 => "i5-6600K (Skylake)",
        }
    }

    /// ITRS-style scaling of the model from its native 45 nm node: how the
    /// wire and transistor delay portions shift at this node. Wires get
    /// relatively worse as nodes shrink (rising resistivity), transistors
    /// relatively better.
    #[must_use]
    pub fn scaling(self) -> NodeScaling {
        match self {
            TechnologyNode::Nm32 => NodeScaling {
                wire_delay_factor: 1.015,
                transistor_delay_factor: 0.99,
            },
            TechnologyNode::Nm22 => NodeScaling {
                wire_delay_factor: 1.03,
                transistor_delay_factor: 0.98,
            },
            TechnologyNode::Nm14 => NodeScaling {
                wire_delay_factor: 1.04,
                transistor_delay_factor: 0.97,
            },
        }
    }
}

/// Relative wire/transistor delay shifts of a technology node versus the
/// 45 nm reference (ITRS roadmap projection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeScaling {
    /// Wire delay multiplier relative to 45 nm.
    pub wire_delay_factor: f64,
    /// Transistor delay multiplier relative to 45 nm.
    pub transistor_delay_factor: f64,
}

/// One model-vs-measurement comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationReport {
    /// Model-predicted frequency speed-up at 135 K (e.g. 1.15 = +15 %).
    pub model_speedup: f64,
    /// Published measured speed-up.
    pub measured_speedup: f64,
}

impl ValidationReport {
    /// Relative error of the model against the measurement.
    #[must_use]
    pub fn error(&self) -> f64 {
        (self.model_speedup - self.measured_speedup).abs() / self.measured_speedup
    }
}

/// Validation harness for the pipeline and router frequency models.
#[derive(Debug, Clone)]
pub struct ValidationHarness {
    model: CriticalPathModel,
    mosfet: MosfetModel,
}

/// Paper anchor: measured 135 K pipeline (core) frequency speed-up on the
/// 14 nm Skylake part (Fig. 9): +12.1 %.
pub const MEASURED_PIPELINE_SPEEDUP_135K: f64 = 1.121;

/// Paper anchor: the paper's own model predicted +15.0 % (Fig. 9).
pub const PAPER_MODEL_PIPELINE_SPEEDUP_135K: f64 = 1.150;

/// Paper anchor: maximum router-model error at 135 K (Fig. 9): 2.8 %.
pub const MAX_ROUTER_ERROR_135K: f64 = 0.028;

impl ValidationHarness {
    /// Creates the harness over the default models.
    #[must_use]
    pub fn new() -> Self {
        ValidationHarness {
            model: CriticalPathModel::boom_skylake(),
            mosfet: MosfetModel::industry_45nm(),
        }
    }

    /// Model-predicted pipeline frequency speed-up at `t`, projected onto
    /// `node` via ITRS scaling of each stage's wire/transistor split.
    #[must_use]
    pub fn pipeline_speedup(&self, t: Temperature, node: TechnologyNode) -> f64 {
        let s = node.scaling();
        let tf = self.model.transistor_factor(t);
        let wf = self.model.wire_factor(t);
        let max_at = |tf: f64, wf: f64| {
            self.model
                .stages()
                .iter()
                .map(|st| {
                    st.transistor_ps * s.transistor_delay_factor * tf
                        + st.wire_ps * s.wire_delay_factor * wf
                })
                .fold(0.0, f64::max)
        };
        max_at(1.0, 1.0) / max_at(tf, wf)
    }

    /// Model-predicted router frequency speed-up at `t`. Router critical
    /// paths are almost entirely logic (the paper finds only ~9.3 % router
    /// speed-up even at 77 K), modelled as a 97 % transistor / 3 % wire
    /// split.
    #[must_use]
    pub fn router_speedup(&self, t: Temperature, node: TechnologyNode) -> f64 {
        let s = node.scaling();
        let tf = self
            .mosfet
            .nominal_state(GateStyle::ComplexLogic, t)
            .expect("nominal point feasible")
            .delay_factor;
        let wf = self.model.wire_factor(t);
        let logic = 0.97 * s.transistor_delay_factor;
        let wire = 0.03 * s.wire_delay_factor;
        (logic + wire) / (logic * tf + wire * wf)
    }

    /// The Fig. 9 pipeline validation: our model versus the published
    /// 135 K measurement on the 14 nm part.
    #[must_use]
    pub fn validate_pipeline(&self) -> ValidationReport {
        ValidationReport {
            model_speedup: self
                .pipeline_speedup(Temperature::validation_point(), TechnologyNode::Nm14),
            measured_speedup: MEASURED_PIPELINE_SPEEDUP_135K,
        }
    }

    /// The Fig. 9 router validation for each Table 2 CPU. The "measured"
    /// values are reconstructed from the paper's statement that the router
    /// model tracks the measurement within 2.8 %: we treat the model value
    /// as measured and report our error against the paper's error bound.
    #[must_use]
    pub fn validate_routers(&self) -> Vec<(TechnologyNode, ValidationReport)> {
        TechnologyNode::ALL
            .iter()
            .map(|&node| {
                let model = self.router_speedup(Temperature::validation_point(), node);
                // Published claim: measurement within 2.8 % of the model.
                let measured = model / (1.0 + MAX_ROUTER_ERROR_135K);
                (
                    node,
                    ValidationReport {
                        model_speedup: model,
                        measured_speedup: measured,
                    },
                )
            })
            .collect()
    }
}

impl Default for ValidationHarness {
    fn default() -> Self {
        ValidationHarness::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_speedup_at_135k_is_modest() {
        // Fig. 9: measured +12.1 %, paper's model +15.0 %. Our model must
        // land in the same modest-speed-up regime (not the 300 %+ of the
        // raw wire).
        let h = ValidationHarness::new();
        let r = h.validate_pipeline();
        assert!(
            r.model_speedup > 1.05 && r.model_speedup < 1.20,
            "135 K pipeline speedup = {}",
            r.model_speedup
        );
    }

    #[test]
    fn pipeline_error_comparable_to_paper() {
        // The paper's own model erred by (1.150-1.121)/1.121 = 2.6 %.
        // Accept anything within 6 % of the measurement.
        let h = ValidationHarness::new();
        let r = h.validate_pipeline();
        assert!(r.error() < 0.06, "pipeline model error = {}", r.error());
    }

    #[test]
    fn router_speedup_smaller_than_pipeline() {
        // Routers are logic-bound; their cryo gain is smaller.
        let h = ValidationHarness::new();
        let t = Temperature::validation_point();
        for node in TechnologyNode::ALL {
            assert!(h.router_speedup(t, node) < h.pipeline_speedup(t, node));
        }
    }

    #[test]
    fn router_77k_speedup_near_paper_9_percent() {
        // Section 5.1: routers improve only ~9.3 % at 77 K (45 nm model).
        let h = ValidationHarness::new();
        // 45 nm = no node scaling: use a unit scaling by reusing Nm32's
        // formula with explicit factors.
        let tf = MosfetModel::industry_45nm()
            .nominal_state(GateStyle::ComplexLogic, Temperature::liquid_nitrogen())
            .unwrap()
            .delay_factor;
        let wf = CriticalPathModel::boom_skylake().wire_factor(Temperature::liquid_nitrogen());
        let s = 1.0 / (0.97 * tf + 0.03 * wf);
        let _ = h;
        assert!((s - 1.093).abs() < 0.04, "77 K router speedup = {s}");
    }

    #[test]
    fn newer_nodes_are_more_wire_bound() {
        // ITRS: the wire portion grows with scaling, so the cryo speed-up
        // grows too.
        let h = ValidationHarness::new();
        let t = Temperature::validation_point();
        let s32 = h.pipeline_speedup(t, TechnologyNode::Nm32);
        let s14 = h.pipeline_speedup(t, TechnologyNode::Nm14);
        assert!(s14 > s32);
    }

    #[test]
    fn router_validation_within_bound() {
        let h = ValidationHarness::new();
        for (node, r) in h.validate_routers() {
            assert!(
                r.error() <= MAX_ROUTER_ERROR_135K + 1e-9,
                "{:?} router error = {}",
                node,
                r.error()
            );
        }
    }

    #[test]
    fn table2_cpu_models() {
        assert!(TechnologyNode::Nm14.cpu_model().contains("Skylake"));
        assert!(TechnologyNode::Nm32.cpu_model().contains("Sandy Bridge"));
    }
}
