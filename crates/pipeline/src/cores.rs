//! The five core designs of Table 3 and their model-driven derivation
//! (Section 4.5).
//!
//! Each design exists twice here: as a **spec** ([`CoreSpec`]) carrying the
//! paper's published Table 3 numbers (these parameterize the system-level
//! evaluation, mirroring how the paper feeds Gem5), and as a **derivation**
//! ([`CoreDesign::model_frequency_ghz`]) where the frequency is recomputed
//! from the device/pipeline models so tests can check the model chain
//! reproduces the published values.

use cryowire_device::{OperatingPoint, Temperature};

use crate::critical_path::CriticalPathModel;
use crate::error::PipelineError;
use crate::ipc::IpcModel;
use crate::superpipeline::Superpipeliner;

/// The five core designs evaluated by the paper (Table 3 / Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreDesign {
    /// 4.0 GHz Skylake-like 300 K baseline.
    Baseline300K,
    /// 77 K baseline plus frontend superpipelining (8-wide).
    Superpipeline77K,
    /// Superpipelined core with the CryoCore width/structure halving.
    SuperpipelineCryoCore77K,
    /// The paper's proposed core: superpipelined + CryoCore + V scaling.
    CryoSp,
    /// The prior state-of-the-art cryogenic core (Byun et al. ISCA'20),
    /// voltage-scaled but not superpipelined.
    ChpCore,
}

impl CoreDesign {
    /// All designs in Table 3 column order.
    pub const ALL: [CoreDesign; 5] = [
        CoreDesign::Baseline300K,
        CoreDesign::Superpipeline77K,
        CoreDesign::SuperpipelineCryoCore77K,
        CoreDesign::CryoSp,
        CoreDesign::ChpCore,
    ];

    /// Table 3 column header.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CoreDesign::Baseline300K => "300K Baseline",
            CoreDesign::Superpipeline77K => "77K Superpipeline",
            CoreDesign::SuperpipelineCryoCore77K => "77K Superpipeline + CryoCore",
            CoreDesign::CryoSp => "77K CryoSP",
            CoreDesign::ChpCore => "CHP-core",
        }
    }

    /// The published specification (Table 3).
    #[must_use]
    pub fn spec(self) -> CoreSpec {
        match self {
            CoreDesign::Baseline300K => CoreSpec {
                design: self,
                frequency_ghz: 4.0,
                core_power: 1.0,
                total_power: 1.0,
                pipeline_depth: 14,
                pipeline_width: 8,
                load_queue: 72,
                store_queue: 56,
                issue_queue: 97,
                rob: 224,
                int_regs: 180,
                fp_regs: 168,
                ipc_at_4ghz: 1.0,
                v_dd: 1.25,
                v_th: 0.47,
                temperature_k: 300.0,
            },
            CoreDesign::Superpipeline77K => CoreSpec {
                design: self,
                frequency_ghz: 6.4,
                core_power: 1.61,
                total_power: 17.15,
                pipeline_depth: 17,
                pipeline_width: 8,
                load_queue: 72,
                store_queue: 56,
                issue_queue: 97,
                rob: 224,
                int_regs: 180,
                fp_regs: 168,
                ipc_at_4ghz: 0.96,
                v_dd: 1.25,
                v_th: 0.47,
                temperature_k: 77.0,
            },
            CoreDesign::SuperpipelineCryoCore77K => CoreSpec {
                design: self,
                frequency_ghz: 6.4,
                core_power: 0.3575,
                total_power: 3.73,
                pipeline_depth: 17,
                pipeline_width: 4,
                load_queue: 24,
                store_queue: 24,
                issue_queue: 72,
                rob: 96,
                int_regs: 100,
                fp_regs: 96,
                ipc_at_4ghz: 0.9,
                v_dd: 1.25,
                v_th: 0.47,
                temperature_k: 77.0,
            },
            CoreDesign::CryoSp => CoreSpec {
                design: self,
                frequency_ghz: 7.84,
                core_power: 0.093,
                total_power: 1.0,
                pipeline_depth: 17,
                pipeline_width: 4,
                load_queue: 24,
                store_queue: 24,
                issue_queue: 72,
                rob: 96,
                int_regs: 100,
                fp_regs: 96,
                ipc_at_4ghz: 0.9,
                v_dd: 0.64,
                v_th: 0.25,
                temperature_k: 77.0,
            },
            CoreDesign::ChpCore => CoreSpec {
                design: self,
                frequency_ghz: 6.1,
                core_power: 0.093,
                total_power: 1.0,
                pipeline_depth: 14,
                pipeline_width: 4,
                load_queue: 24,
                store_queue: 24,
                issue_queue: 72,
                rob: 96,
                int_regs: 100,
                fp_regs: 96,
                ipc_at_4ghz: 0.93,
                v_dd: 0.75,
                v_th: 0.25,
                temperature_k: 77.0,
            },
        }
    }

    /// Recomputes this design's clock frequency from the device and
    /// pipeline models (the Section 4 derivation chain), GHz.
    ///
    /// # Errors
    ///
    /// Propagates device-model errors for infeasible voltage points.
    pub fn model_frequency_ghz(self) -> Result<f64, PipelineError> {
        let model = CriticalPathModel::boom_skylake();
        let t77 = Temperature::liquid_nitrogen();
        match self {
            CoreDesign::Baseline300K => Ok(model.frequency_ghz(Temperature::ambient())),
            CoreDesign::Superpipeline77K | CoreDesign::SuperpipelineCryoCore77K => {
                Ok(Superpipeliner::new(&model).superpipeline(t77).frequency_ghz)
            }
            CoreDesign::CryoSp => {
                let base = Superpipeliner::new(&model).superpipeline(t77).frequency_ghz;
                let nominal = model.frequency_ghz(t77);
                let scaled = model.frequency_ghz_at(t77, OperatingPoint::cryosp())?;
                Ok(base * scaled / nominal)
            }
            CoreDesign::ChpCore => {
                let nominal = model.frequency_ghz(t77);
                let scaled = model.frequency_ghz_at(t77, OperatingPoint::chp_core())?;
                // CHP keeps the baseline 14-deep pipeline.
                let _ = nominal;
                Ok(scaled)
            }
        }
    }

    /// IPC at equal frequency predicted by the analytic model, normalized
    /// to the 8-wide baseline (Table 3's "IPC (@4GHz)" row).
    #[must_use]
    pub fn model_ipc(self) -> f64 {
        let ipc = IpcModel::parsec_calibrated();
        match self {
            CoreDesign::Baseline300K => ipc.ipc(0, 8),
            CoreDesign::Superpipeline77K => ipc.ipc(3, 8),
            CoreDesign::SuperpipelineCryoCore77K | CoreDesign::CryoSp => ipc.ipc(3, 4),
            CoreDesign::ChpCore => ipc.ipc(0, 4),
        }
    }
}

/// A core specification row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreSpec {
    /// Which design this is.
    pub design: CoreDesign,
    /// Clock frequency, GHz.
    pub frequency_ghz: f64,
    /// Core (device) power, normalized to the 300 K baseline.
    pub core_power: f64,
    /// Total power including cooling, normalized to the 300 K baseline.
    pub total_power: f64,
    /// Pipeline depth (stages).
    pub pipeline_depth: usize,
    /// Issue width.
    pub pipeline_width: usize,
    /// Load-queue entries.
    pub load_queue: usize,
    /// Store-queue entries.
    pub store_queue: usize,
    /// Issue-queue entries.
    pub issue_queue: usize,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Physical integer registers.
    pub int_regs: usize,
    /// Physical floating-point registers.
    pub fp_regs: usize,
    /// IPC at a fixed 4 GHz clock, normalized to the baseline.
    pub ipc_at_4ghz: f64,
    /// Supply voltage, volts.
    pub v_dd: f64,
    /// Threshold voltage (at the operating temperature), volts.
    pub v_th: f64,
    /// Operating temperature, kelvin.
    pub temperature_k: f64,
}

impl CoreSpec {
    /// Single-thread performance factor relative to the 300 K baseline:
    /// frequency × IPC.
    #[must_use]
    pub fn performance_factor(&self) -> f64 {
        let base = CoreDesign::Baseline300K.spec();
        (self.frequency_ghz / base.frequency_ghz) * (self.ipc_at_4ghz / base.ipc_at_4ghz)
    }

    /// The design's operating point.
    #[must_use]
    pub fn operating_point(&self) -> OperatingPoint {
        OperatingPoint {
            v_dd: self.v_dd,
            v_th: self.v_th,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_frequencies() {
        assert_eq!(CoreDesign::Baseline300K.spec().frequency_ghz, 4.0);
        assert_eq!(CoreDesign::CryoSp.spec().frequency_ghz, 7.84);
        assert_eq!(CoreDesign::ChpCore.spec().frequency_ghz, 6.1);
    }

    #[test]
    fn cryosp_is_96_percent_faster_than_baseline() {
        // Abstract: "96 % higher clock frequency of CryoSP".
        let ratio =
            CoreDesign::CryoSp.spec().frequency_ghz / CoreDesign::Baseline300K.spec().frequency_ghz;
        assert!((ratio - 1.96).abs() < 0.01);
    }

    #[test]
    fn cryosp_is_28_percent_faster_than_chp() {
        // Section 4.5: 28 % higher clock frequency than CHP-core.
        let ratio =
            CoreDesign::CryoSp.spec().frequency_ghz / CoreDesign::ChpCore.spec().frequency_ghz;
        assert!((ratio - 1.285).abs() < 0.01);
    }

    #[test]
    fn model_reproduces_baseline_frequency() {
        let f = CoreDesign::Baseline300K.model_frequency_ghz().unwrap();
        assert!((f - 4.0).abs() < 0.02, "model 300 K frequency = {f}");
    }

    #[test]
    fn model_reproduces_superpipeline_frequency() {
        let f = CoreDesign::Superpipeline77K.model_frequency_ghz().unwrap();
        assert!((f - 6.4).abs() < 0.3, "model superpipeline frequency = {f}");
    }

    #[test]
    fn model_reproduces_cryosp_frequency() {
        let f = CoreDesign::CryoSp.model_frequency_ghz().unwrap();
        assert!(
            (f - 7.84).abs() / 7.84 < 0.05,
            "model CryoSP frequency = {f}, Table 3 says 7.84"
        );
    }

    #[test]
    fn model_chp_frequency_within_8_percent() {
        // Our compact voltage model overshoots CHP slightly (documented in
        // EXPERIMENTS.md).
        let f = CoreDesign::ChpCore.model_frequency_ghz().unwrap();
        assert!(
            (f - 6.1).abs() / 6.1 < 0.09,
            "model CHP frequency = {f}, Table 3 says 6.1"
        );
    }

    #[test]
    fn model_ipc_matches_table3() {
        for design in CoreDesign::ALL {
            let spec = design.spec().ipc_at_4ghz;
            let model = design.model_ipc();
            assert!(
                (spec - model).abs() < 0.015,
                "{}: spec IPC {spec} vs model {model}",
                design.name()
            );
        }
    }

    #[test]
    fn total_power_includes_10_65x_cooling() {
        // Table 3: 77K Superpipeline total power 17.15 = 1.61 × 10.65.
        let s = CoreDesign::Superpipeline77K.spec();
        assert!((s.core_power * 10.65 - s.total_power).abs() < 0.01);
    }

    #[test]
    fn cryosp_total_power_matches_300k_budget() {
        let s = CoreDesign::CryoSp.spec();
        assert!((s.core_power * 10.65 - s.total_power).abs() < 0.02);
        assert!((s.total_power - 1.0).abs() < 0.02);
    }

    #[test]
    fn performance_factors_ordered() {
        // CryoSP > CHP > baseline in single-thread performance.
        let cryosp = CoreDesign::CryoSp.spec().performance_factor();
        let chp = CoreDesign::ChpCore.spec().performance_factor();
        let base = CoreDesign::Baseline300K.spec().performance_factor();
        assert!(cryosp > chp && chp > base);
        assert!((base - 1.0).abs() < 1e-12);
    }
}
