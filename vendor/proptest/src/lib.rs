//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: the [`proptest!`] macro over `ident in strategy` arguments,
//! range and [`any`] strategies, [`collection::vec`], `prop_map`, and
//! the `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases from
//! a seed derived from the test name, so failures reproduce across
//! runs. Unlike upstream there is **no shrinking** — the failure
//! message carries the sampled arguments instead.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (`cases` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suites fast while
        // still exercising the property space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident),*) => {
        impl<$($S: Strategy),*> Strategy for ($($S,)*) {
            type Value = ($($S::Value,)*);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($S,)*) = self;
                ($($S.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a default whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derives the deterministic per-test RNG from the test name.
#[must_use]
pub fn rng_for_test(name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests: `ident in strategy` arguments are sampled
/// `cases` times each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])+ fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for_test(stringify!($name));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                // The attempt cap bounds pathological prop_assume!
                // rejection rates.
                while passed < config.cases && attempts < config.cases.saturating_mul(16) {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed: {}\n  sampled args {} = {:?}",
                                stringify!($name),
                                msg,
                                stringify!(($($arg),+)),
                                ($(&$arg,)+)
                            );
                        }
                    }
                }
                assert!(
                    passed >= config.cases,
                    "property `{}`: only {passed}/{} cases passed the assumptions",
                    stringify!($name),
                    config.cases
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Filters out cases that do not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The glob-import surface (`proptest::prelude` subset).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y), "y = {y}");
        }

        #[test]
        fn assume_filters(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vectors_sized(v in crate::collection::vec(any::<bool>(), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }
    }

    #[test]
    fn mapped_strategy_applies() {
        let s = (1u64..5).prop_map(|x| x * 100);
        let mut rng = crate::rng_for_test("mapped");
        for _ in 0..16 {
            let v = s.sample(&mut rng);
            assert!((100..500).contains(&v) && v % 100 == 0);
        }
    }
}
