//! Offline stand-in for `parking_lot`.
//!
//! Wraps [`std::sync`] locks behind parking_lot's poison-free API
//! (`lock()`/`read()`/`write()` returning guards directly). A poisoned
//! std lock — only possible after a panic while holding the guard —
//! falls through to the underlying data via `into_inner`-style
//! recovery, matching parking_lot's "no poisoning" contract.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock (poison-free API).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock (poison-free API).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
