//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace
//! actually derives on: non-generic structs with named fields, and
//! fieldless (unit-variant) enums. The expansion targets the vendored
//! serde stub's `Serialize` trait (`fn serialize_value(&self) -> Value`).
//!
//! Written against `proc_macro` directly — `syn`/`quote` are not
//! available offline, and the grammar subset we need is tiny.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` for a struct with named
/// fields or a fieldless enum.
///
/// # Panics
///
/// Panics at compile time when applied to unsupported shapes
/// (tuple structs, generic types, enums with payloads).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`) and visibility.
    loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                i += 1;
                // `pub(crate)` etc.
                if let TokenTree::Group(g) = &tokens[i] {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, found {other}"),
    };
    i += 1;

    // The stub supports only non-generic types.
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("derive(Serialize) stub does not support generic types ({name})");
    }

    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("derive(Serialize): expected braced body for {name}, found {other}"),
    };

    let impl_body = match kind.as_str() {
        "struct" => {
            let fields = named_fields(body);
            assert!(
                !fields.is_empty(),
                "derive(Serialize) stub: no named fields found in {name}"
            );
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), serde::Serialize::serialize_value(&self.{f})),")
                })
                .collect();
            format!("serde::value::Value::Object(vec![{entries}])")
        }
        "enum" => {
            let variants = unit_variants(body, &name);
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("{name}::{v} => serde::value::Value::String(\"{v}\".to_string()),")
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
        other => panic!("derive(Serialize) stub cannot handle `{other}`"),
    };

    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> serde::value::Value {{\n\
                 {impl_body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl parses")
}

/// Extracts field names from a named-field struct body: skips
/// attributes and visibility, takes the ident before each top-level
/// `:`, then skips the type up to the next top-level `,`.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let TokenTree::Ident(id) = &tokens[i] else {
            panic!(
                "derive(Serialize): expected field name, found {}",
                tokens[i]
            );
        };
        fields.push(id.to_string());
        i += 1;
        // Expect `:`, then skip the type until a `,` at angle-depth 0.
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "derive(Serialize): expected `:` after field name"
        );
        i += 1;
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Extracts variant names from a fieldless enum body.
fn unit_variants(body: TokenStream, name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tok) = iter.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    panic!("derive(Serialize) stub: enum {name} has a variant with fields");
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("derive(Serialize): unexpected token in enum {name}: {other}"),
        }
    }
    variants
}
