//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stub provides the exact subset of the `rand 0.8` API the workspace
//! uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), but everything
//! in this workspace treats the RNG as an opaque deterministic source,
//! so only reproducibility matters, not the exact stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full value range (the `Standard`
/// distribution subset: `rng.gen::<T>()`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[low, high)` (`high_inclusive` widens to
    /// `[low, high]`).
    fn sample_in<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        high_inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                high_inclusive: bool,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) + i128::from(high_inclusive);
                assert!(span > 0, "gen_range: empty range");
                // The draw is a non-negative u64, so for spans that fit
                // in u64 the i128 `rem_euclid` reduces to a plain u64
                // modulo — same value, without the 128-bit division
                // (this sits on the simulator's per-packet hot path).
                let offset = if span >= 1 << 64 {
                    rng.next_u64() as i128
                } else {
                    (rng.next_u64() % (span as u64)) as i128
                };
                (low as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _high_inclusive: bool,
    ) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + (high - low) * f64::sample(rng)
    }
}

/// Ranges convertible into a uniform sample (argument of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing extension trait (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (`rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++ under the hood).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(5u64..=5);
            assert_eq!(b, 5);
            let c = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&c));
            let d = rng.gen_range(0.5f64..=2.5);
            assert!((0.5..=2.5).contains(&d));
            let e = rng.gen_range(0u64..u64::MAX);
            assert!(e < u64::MAX);
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }
}
