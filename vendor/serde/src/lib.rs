//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored stub
//! provides the one capability the workspace needs from serde: a
//! [`Serialize`] trait (with a derive macro for plain structs) that
//! lowers values into the JSON-like [`value::Value`] tree consumed by
//! the vendored `serde_json`.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

pub mod value {
    //! The serialized value tree (shared with the vendored `serde_json`).

    use std::fmt::Write as _;

    /// A JSON-like document tree. Object keys keep insertion order so
    /// serialization is deterministic.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// Signed integer.
        Int(i64),
        /// Unsigned integer (kept separate to round-trip `u64`).
        UInt(u64),
        /// Floating-point number.
        Float(f64),
        /// String.
        String(String),
        /// Array.
        Array(Vec<Value>),
        /// Object with insertion-ordered keys.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The value as `f64` if it is numeric.
        #[must_use]
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Int(i) => Some(*i as f64),
                Value::UInt(u) => Some(*u as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        }

        /// The value as `i64` if it is an integer.
        #[must_use]
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Int(i) => Some(*i),
                Value::UInt(u) => i64::try_from(*u).ok(),
                _ => None,
            }
        }

        /// The value as `u64` if it is a non-negative integer.
        #[must_use]
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(i) => u64::try_from(*i).ok(),
                Value::UInt(u) => Some(*u),
                _ => None,
            }
        }

        /// The value as `bool`.
        #[must_use]
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value as `&str`.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice.
        #[must_use]
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The value as object entries.
        #[must_use]
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }

        /// Object-field lookup (`None` for non-objects/missing keys).
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }

        /// Writes the compact JSON encoding into `out`.
        pub fn write_json(&self, out: &mut String) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Int(i) => {
                    let _ = write!(out, "{i}");
                }
                Value::UInt(u) => {
                    let _ = write!(out, "{u}");
                }
                Value::Float(f) => write_f64(out, *f),
                Value::String(s) => write_escaped(out, s),
                Value::Array(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write_json(out);
                    }
                    out.push(']');
                }
                Value::Object(entries) => {
                    out.push('{');
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_escaped(out, k);
                        out.push(':');
                        v.write_json(out);
                    }
                    out.push('}');
                }
            }
        }

        /// Writes the pretty (2-space indented) JSON encoding into `out`.
        pub fn write_json_pretty(&self, out: &mut String, indent: usize) {
            let pad = |out: &mut String, n: usize| {
                for _ in 0..n {
                    out.push_str("  ");
                }
            };
            match self {
                Value::Array(items) if !items.is_empty() => {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(",\n");
                        }
                        pad(out, indent + 1);
                        item.write_json_pretty(out, indent + 1);
                    }
                    out.push('\n');
                    pad(out, indent);
                    out.push(']');
                }
                Value::Object(entries) if !entries.is_empty() => {
                    out.push_str("{\n");
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i > 0 {
                            out.push_str(",\n");
                        }
                        pad(out, indent + 1);
                        write_escaped(out, k);
                        out.push_str(": ");
                        v.write_json_pretty(out, indent + 1);
                    }
                    out.push('\n');
                    pad(out, indent);
                    out.push('}');
                }
                other => other.write_json(out),
            }
        }
    }

    impl std::fmt::Display for Value {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let mut s = String::new();
            self.write_json(&mut s);
            f.write_str(&s)
        }
    }

    fn write_f64(out: &mut String, f: f64) {
        if f.is_finite() {
            if f == f.trunc() && f.abs() < 1e15 {
                // Keep integral floats readable and round-trippable.
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        } else {
            // JSON has no Inf/NaN; match serde_json's lossy `null`.
            out.push_str("null");
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

use value::Value;

/// Serialization into the [`Value`] tree.
///
/// This replaces upstream serde's visitor machinery with the one
/// concrete output format the workspace uses (JSON documents).
pub trait Serialize {
    /// Lowers `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, u8, u16, u32);

impl Serialize for u64 {
    fn serialize_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(true.serialize_value(), Value::Bool(true));
        assert_eq!(3u64.serialize_value(), Value::UInt(3));
        assert_eq!((-2i32).serialize_value(), Value::Int(-2));
        assert_eq!("x".serialize_value(), Value::String("x".into()));
        assert_eq!(None::<u64>.serialize_value(), Value::Null);
    }

    #[test]
    fn compact_json_shape() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Int(1), Value::Int(2)])),
            ("b".into(), Value::String("x\"y".into())),
        ]);
        let mut s = String::new();
        v.write_json(&mut s);
        assert_eq!(s, r#"{"a":[1,2],"b":"x\"y"}"#);
    }
}
