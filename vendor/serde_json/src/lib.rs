//! Offline stand-in for `serde_json`.
//!
//! Provides the subset the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_value`], a strict [`from_str`] parser
//! producing the shared [`Value`] tree, and a [`json!`]-free builder
//! API via `Value` itself.

#![warn(missing_docs)]

pub use serde::value::Value;
use serde::Serialize;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Compact JSON encoding.
///
/// # Errors
///
/// Never fails for the stub's value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_value().write_json(&mut out);
    Ok(out)
}

/// Pretty (2-space indented) JSON encoding.
///
/// # Errors
///
/// Never fails for the stub's value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_value().write_json_pretty(&mut out, 0);
    Ok(out)
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem.
pub fn from_str(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let doc = Value::Object(vec![
            ("name".into(), Value::String("sweep".into())),
            ("n".into(), Value::Int(-3)),
            ("u".into(), Value::UInt(u64::MAX)),
            ("x".into(), Value::Float(1.5)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "arr".into(),
                Value::Array(vec![Value::Int(1), Value::String("a\"b\n".into())]),
            ),
            ("obj".into(), Value::Object(vec![])),
        ]);
        let compact = to_string(&doc).unwrap();
        assert_eq!(from_str(&compact).unwrap(), doc);
        let pretty = to_string_pretty(&doc).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), doc);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Value::Float(2.0);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{]").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }
}
