//! Offline stand-in for `criterion`.
//!
//! Covers the bench surface this workspace uses: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/`finish`,
//! `Bencher::iter`, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical
//! machinery it times a fixed number of iterations and prints
//! min/mean/max, which is enough for the repo's "print the figure, then
//! measure the kernel" bench style.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from std.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bench driver handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Registers a stand-alone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: a warm-up call, then `sample_size` timed
    /// samples of the closure handed to [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return self;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        println!(
            "{}/{id}: {} samples, min {:?}, mean {:?}, max {:?}",
            self.name,
            samples.len(),
            min,
            mean,
            max
        );
        self
    }

    /// Ends the group (upstream writes reports here; the stub has
    /// nothing left to do).
    pub fn finish(&mut self) {}
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
