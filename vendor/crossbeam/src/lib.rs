//! Offline stand-in for `crossbeam`.
//!
//! The workspace uses exactly one crossbeam facility — `thread::scope`
//! with `Scope::spawn` — which std has provided natively since 1.63.
//! This stub adapts the crossbeam call shape (`spawn(|scope| ...)`
//! closures receiving the scope, `scope(...)` returning a `Result`)
//! onto [`std::thread::scope`].
//!
//! Divergence from upstream: a panicking child thread panics the
//! calling thread when the scope joins (std semantics) instead of
//! surfacing as `Err`, so `scope(...)` here always returns `Ok`.
//! Callers `.expect(...)` the result either way.

#![warn(missing_docs)]

/// Scoped threads (`crossbeam::thread` subset).
pub mod thread {
    /// A scope handle; clones of the underlying std scope reference.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the child's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope (for
        /// nested spawns), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins them all before returning.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (std join semantics panic instead); the
    /// `Result` mirrors the upstream signature.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let results = std::sync::Mutex::new(vec![0u64; data.len()]);
            super::scope(|scope| {
                for (i, &x) in data.iter().enumerate() {
                    let results = &results;
                    scope.spawn(move |_| {
                        results.lock().unwrap()[i] = x * 10;
                    });
                }
            })
            .unwrap();
            assert_eq!(results.into_inner().unwrap(), vec![10, 20, 30, 40]);
        }
    }
}
