//! Quickstart: build the paper's cryogenic computer and reproduce the
//! headline result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cryowire::device::{MosfetModel, RepeaterOptimizer, Temperature, Wire, WireClass};
use cryowire::experiments::{self, Fidelity};
use cryowire::pipeline::{CoreDesign, CriticalPathModel, Superpipeliner};
use cryowire::system::{SystemDesign, SystemSimulator, Workload};

fn main() {
    let t77 = Temperature::liquid_nitrogen();
    let t300 = Temperature::ambient();

    println!("== CryoWire quickstart ==\n");

    // 1. Wires get dramatically faster at 77 K ...
    let mosfet = MosfetModel::industry_45nm();
    let opt = RepeaterOptimizer::new(&mosfet);
    let link = Wire::new(WireClass::Global, 6_000.0);
    println!(
        "6 mm global wire link speed-up at 77 K: {:.2}x",
        opt.optimal_delay(&link, t300) / opt.optimal_delay(&link, t77)
    );

    // 2. ... which moves the pipeline bottleneck to the frontend ...
    let model = CriticalPathModel::boom_skylake();
    println!(
        "300 K bottleneck stage: {} | 77 K bottleneck stage: {}",
        model.bottleneck(t300).id,
        model.bottleneck(t77).id
    );

    // 3. ... so frontend superpipelining pays off (CryoSP).
    let sp = Superpipeliner::new(&model).superpipeline(t77);
    println!(
        "superpipelined 77 K clock: {:.2} GHz (+{:.0}% vs 300 K), IPC cost {:.1}%",
        sp.frequency_ghz,
        (sp.frequency_ghz / model.frequency_ghz(t300) - 1.0) * 100.0,
        (1.0 - sp.ipc_factor) * 100.0
    );
    println!(
        "CryoSP with voltage scaling: {:.2} GHz (Table 3: 7.84 GHz)\n",
        CoreDesign::CryoSp.model_frequency_ghz().expect("feasible")
    );

    // 4. System level: the full design vs the baselines on one workload.
    let sim = SystemSimulator::new();
    let workload = Workload::parsec_by_name("streamcluster").expect("known workload");
    let chp = sim
        .evaluate(&workload, &SystemDesign::chp_mesh())
        .performance();
    let full = sim
        .evaluate(&workload, &SystemDesign::cryosp_cryobus())
        .performance();
    println!(
        "streamcluster: CryoSP+CryoBus is {:.2}x over CHP-core+Mesh (paper: 5.74x)\n",
        full / chp
    );

    // 5. The full Fig. 23 table.
    let fig23 = experiments::fig23_system_performance(Fidelity::Quick);
    println!("{}", fig23.report());
    println!(
        "average speed-up: {:.2}x vs CHP (paper 2.53), {:.2}x vs 300 K (paper 3.82)",
        fig23.average_speedup_vs_chp, fig23.average_speedup_vs_300k
    );
}
