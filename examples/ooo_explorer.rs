//! Out-of-order core explorer: how width, depth, bypass latency and
//! structure sizes shape IPC — the Gem5-style study behind Table 3 and
//! the paper's un-pipelinable-backend observation.
//!
//! ```sh
//! cargo run --release --example ooo_explorer
//! ```

use cryowire::ooo::{AddressModel, CacheHierarchy, CoreConfig, CoreSimulator, TraceConfig};

fn main() {
    let trace = TraceConfig::parsec_like().generate(120_000, 7);
    let run = |cfg: CoreConfig| CoreSimulator::new(cfg).run(&trace);

    println!("== Table 3 microarchitectures on a PARSEC-like trace ==\n");
    let base = run(CoreConfig::skylake_8_wide());
    println!("{:<36} {:>6} {:>8}", "configuration", "IPC", "factor");
    for (name, cfg) in [
        ("300K Baseline (8-wide)", CoreConfig::skylake_8_wide()),
        (
            "77K Superpipeline (8-wide, +3 fe)",
            CoreConfig::superpipelined_8_wide(),
        ),
        ("CHP-core (4-wide)", CoreConfig::cryocore_4_wide()),
        ("CryoSP (4-wide, +3 fe)", CoreConfig::cryosp()),
    ] {
        let m = run(cfg);
        println!("{name:<36} {:>6.3} {:>8.3}", m.ipc(), m.ipc() / base.ipc());
    }

    println!("\n== Why the backend is un-pipelinable (Observation #2) ==\n");
    println!("{:<26} {:>6} {:>9}", "change", "IPC", "IPC loss");
    for (name, cfg) in [
        ("baseline", CoreConfig::skylake_8_wide()),
        (
            "+3 frontend stages",
            CoreConfig::skylake_8_wide().with_frontend_depth(9),
        ),
        (
            "bypass 1 -> 2 cycles",
            CoreConfig::skylake_8_wide().with_bypass_cycles(2),
        ),
        (
            "bypass 1 -> 3 cycles",
            CoreConfig::skylake_8_wide().with_bypass_cycles(3),
        ),
    ] {
        let m = run(cfg);
        println!(
            "{name:<26} {:>6.3} {:>8.1}%",
            m.ipc(),
            (1.0 - m.ipc() / base.ipc()) * 100.0
        );
    }

    println!("\n== Branch prediction ==\n");
    println!(
        "branches {} | mispredict rate {:.2}% | overrides {} (bubbles, not refills)",
        base.branches,
        base.mispredict_rate() * 100.0,
        base.overrides
    );

    println!("\n== Working-set sweep on the simulated cache hierarchy ==\n");
    println!("{:>14} {:>10} {:>10}", "hot set (KiB)", "L1 miss", "IPC");
    for hot_kib in [8u64, 16, 64, 128, 512, 4096] {
        let mut h = CacheHierarchy::table4_300k();
        let mut addrs = AddressModel::new(hot_kib * 1024, 0.95, 1);
        let m = CoreSimulator::new(CoreConfig::skylake_8_wide())
            .run_with_memory(&trace, &mut h, &mut addrs);
        println!(
            "{hot_kib:>14} {:>9.1}% {:>10.3}",
            h.miss_ratios().0 * 100.0,
            m.ipc()
        );
    }
}
