//! Step-by-step walkthrough of the CryoBus mechanism (Fig. 19): request,
//! matrix arbitration, cross-link control, broadcast.
//!
//! ```sh
//! cargo run --example cryobus_mechanism
//! ```

use cryowire::device::Temperature;
use cryowire::noc::CryoBus;

fn main() {
    let t77 = Temperature::liquid_nitrogen();
    let bus = CryoBus::new(64, t77);
    let (req, arb, grant, bcast) = bus.latency_breakdown();

    println!("== CryoBus working mechanism (Fig. 19) ==\n");
    println!(
        "64-core H-tree, {} levels, arbiter at the die center\n",
        bus.fabric().levels()
    );

    // A contended cycle: cores 5, 23 and 60 want the bus.
    let mut arbiter = bus.arbiter();
    let mut requests = vec![false; 64];
    for &core in &[5usize, 23, 60] {
        requests[core] = true;
    }

    println!("(1) Request    — cores 5, 23, 60 signal the arbiter ({req} cycle)");
    let winner = arbiter.arbitrate(&requests).expect("someone requested");
    println!("(2) Arbitration — matrix arbiter grants core {winner} ({arb} cycle)");
    println!(
        "(3) Grant + control — grant returns; cross-link switches are\n\
         \u{20}   programmed for source {winner} ({grant} cycles total)"
    );
    let reach = bus.fabric().broadcast_reach(winner);
    println!(
        "(4) Broadcast  — source {winner} reaches all {} cores in {bcast} cycle\n",
        reach.len()
    );
    println!(
        "total transaction latency: {} cycles; the bus itself is held for\n\
         only {} cycle, which sets the bandwidth limit (Section 5.2.3)\n",
        bus.transaction_latency(),
        bus.occupancy_cycles()
    );

    // Fairness under sustained contention.
    println!("sustained contention (everyone requests, 8 grants):");
    let mut arbiter = bus.arbiter();
    let all = vec![true; 64];
    let grants: Vec<usize> = (0..8)
        .map(|_| arbiter.arbitrate(&all).expect("all requesting"))
        .collect();
    println!("  grant order: {grants:?} (least-recently-granted rotation)");

    println!(
        "\nsaturation: 1-way {:.4} packets/core/cycle, 2-way {:.4}",
        bus.saturation_rate_per_core(),
        CryoBus::two_way(64, t77).saturation_rate_per_core()
    );
}
