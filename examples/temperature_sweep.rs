//! Temperature sweet-spot search (the Fig. 27 / Section 7.4 analysis).
//!
//! ```sh
//! cargo run --release --example temperature_sweep
//! ```

use cryowire::device::{CoolingModel, Temperature};
use cryowire::experiments;

fn main() {
    println!("== Operating-temperature trade-off (Section 7.4) ==\n");

    // Cooling overhead alone, across the range.
    let cooling = CoolingModel::paper_default();
    println!("cooling overhead CO(T) at 30% of Carnot:");
    for k in [77.0, 100.0, 150.0, 200.0, 250.0, 300.0] {
        let t = Temperature::new(k).expect("valid temperature");
        println!("  {k:>5} K: {:>6.2} W per device watt", cooling.overhead(t));
    }
    println!();

    // The full sweep: performance, power and efficiency per temperature.
    let sweep = experiments::fig27_temperature_sweep();
    println!("{}", sweep.report());

    let sweet = sweep.sweet_spot();
    println!(
        "sweet spot: {} K (perf/W {:.2}x the 300 K baseline)",
        sweet.temperature_k, sweet.perf_per_power
    );
    let p77 = sweep.at(77.0).expect("77 K point").perf_per_power;
    let p100 = sweep.at(100.0).expect("100 K point").perf_per_power;
    println!("paper's observation holds: perf/W at 100 K ({p100:.2}) > at 77 K ({p77:.2})");
}
