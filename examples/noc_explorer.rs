//! NoC explorer: load–latency curves for every evaluated interconnect
//! under a chosen traffic pattern.
//!
//! ```sh
//! cargo run --release --example noc_explorer [uniform|transpose|hotspot|bitrev|burst]
//! ```

use cryowire::device::Temperature;
use cryowire::noc::{
    CryoBus, LoadLatencySweep, Network, NocKind, RouterClass, RouterNetwork, SharedBus, SimConfig,
    TrafficPattern, WORKLOAD_BANDS,
};

fn main() {
    let pattern = match std::env::args().nth(1).as_deref() {
        Some("transpose") => TrafficPattern::Transpose,
        Some("hotspot") => TrafficPattern::hotspot_default(),
        Some("bitrev") => TrafficPattern::BitReverse,
        Some("burst") => TrafficPattern::burst_default(),
        _ => TrafficPattern::UniformRandom,
    };
    println!("== 64-core load-latency explorer, pattern: {pattern:?} ==\n");

    let t77 = Temperature::liquid_nitrogen();
    let t300 = Temperature::ambient();
    let nets: Vec<Box<dyn Network>> = vec![
        Box::new(RouterNetwork::mesh64(RouterClass::OneCycle, t300)),
        Box::new(RouterNetwork::mesh64(RouterClass::OneCycle, t77)),
        Box::new(
            RouterNetwork::new(NocKind::CMesh, 64, RouterClass::ThreeCycle, t77).expect("valid"),
        ),
        Box::new(
            RouterNetwork::new(
                NocKind::FlattenedButterfly,
                64,
                RouterClass::ThreeCycle,
                t77,
            )
            .expect("valid"),
        ),
        Box::new(SharedBus::new(64, t300)),
        Box::new(SharedBus::new(64, t77)),
        Box::new(CryoBus::new(64, t77)),
        Box::new(CryoBus::two_way(64, t77)),
    ];

    let sweep = LoadLatencySweep::new(vec![
        0.0005, 0.001, 0.002, 0.004, 0.006, 0.008, 0.010, 0.012, 0.014, 0.018, 0.024, 0.032,
    ])
    .with_config(SimConfig {
        cycles: 12_000,
        warmup: 3_000,
        ..SimConfig::default()
    });

    println!(
        "{:<34} {:>14} {:>16}",
        "network", "zero-load (cy)", "saturation rate"
    );
    for net in &nets {
        let curve = sweep.run(net.as_ref(), pattern).expect("valid sweep");
        println!(
            "{:<34} {:>14.1} {:>16}",
            curve.network,
            curve.zero_load_latency(),
            curve
                .saturation_rate()
                .map_or("> 0.032".to_string(), |s| format!("{s:.4}"))
        );
    }

    println!("\nworkload injection bands (Fig. 18):");
    for band in WORKLOAD_BANDS {
        println!(
            "  {:<10} {:.4} .. {:.4} packets/core/cycle",
            band.name, band.min_rate, band.max_rate
        );
    }
}
