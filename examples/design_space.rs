//! Design-space exploration: how deep should the frontend be pipelined,
//! and at which temperature does superpipelining start to pay?
//!
//! This reproduces the paper's *methodology* (Section 4.4) as a tool: for
//! a range of temperatures it derives the target latency, decides which
//! stages to split, and weighs the frequency gain against the IPC loss —
//! exactly the trade-off CryoSP's design rests on.
//!
//! ```sh
//! cargo run --example design_space
//! ```

use cryowire::device::Temperature;
use cryowire::pipeline::{CriticalPathModel, IpcModel, Superpipeliner};

fn main() {
    let model = CriticalPathModel::boom_skylake();
    let sp = Superpipeliner::new(&model);

    println!("== Frontend superpipelining across temperatures ==\n");
    println!(
        "{:>6} {:>10} {:>8} {:>10} {:>8} {:>9} {:>9}",
        "T (K)", "base GHz", "splits", "sp GHz", "IPC", "net gain", "verdict"
    );
    for k in [300.0, 250.0, 200.0, 150.0, 135.0, 100.0, 77.0] {
        let t = Temperature::new(k).expect("valid sweep temperature");
        let base = model.frequency_ghz(t);
        let result = sp.superpipeline(t);
        let net = result.net_gain_over(base);
        println!(
            "{:>6} {:>10.2} {:>8} {:>10.2} {:>8.3} {:>8.1}% {:>9}",
            k,
            base,
            result.added_stages,
            result.frequency_ghz,
            result.ipc_factor,
            (net - 1.0) * 100.0,
            if net > 1.02 { "worth it" } else { "skip" }
        );
    }

    println!("\n== IPC cost of deeper frontends (misprediction refill) ==\n");
    let ipc = IpcModel::parsec_calibrated();
    println!("{:>14} {:>10}", "added stages", "IPC factor");
    for added in 0..8 {
        println!("{added:>14} {:>10.3}", ipc.depth_penalty_factor(added));
    }

    println!(
        "\nObservation: at 300 K splitting buys almost nothing (the \
         un-pipelinable backend is the wall); at 77 K the same transform \
         yields ~60% more clock for ~4% IPC — the CryoSP design point."
    );
}
