//! Every experiment is a pure function of its inputs: rerunning any of
//! them must reproduce byte-identical reports. This is what makes
//! EXPERIMENTS.md auditable.

use cryowire::experiments::{self, Fidelity};

#[test]
fn analytic_experiments_are_deterministic() {
    assert_eq!(
        experiments::fig05_wire_speedup(),
        experiments::fig05_wire_speedup()
    );
    assert_eq!(
        experiments::fig12_critical_path_300k(),
        experiments::fig12_critical_path_300k()
    );
    assert_eq!(
        experiments::tab03_core_specs(),
        experiments::tab03_core_specs()
    );
    assert_eq!(
        experiments::fig22_noc_power(),
        experiments::fig22_noc_power()
    );
    assert_eq!(
        experiments::fig27_temperature_sweep(),
        experiments::fig27_temperature_sweep()
    );
}

#[test]
fn simulation_experiments_are_deterministic() {
    // Seeded RNGs everywhere: same fidelity ⇒ same curves.
    assert_eq!(
        experiments::fig18_bus_load_latency(Fidelity::Quick),
        experiments::fig18_bus_load_latency(Fidelity::Quick)
    );
    assert_eq!(
        experiments::fig23_system_performance(Fidelity::Quick),
        experiments::fig23_system_performance(Fidelity::Quick)
    );
    assert_eq!(
        experiments::ipc_cross_validation(),
        experiments::ipc_cross_validation()
    );
    assert_eq!(
        experiments::coherence_cross_validation(),
        experiments::coherence_cross_validation()
    );
}

#[test]
fn parallel_sweep_matches_serial() {
    // The crossbeam fan-out must not change results, only wall time.
    use cryowire::device::Temperature;
    use cryowire::noc::{CryoBus, LoadLatencySweep, Network, SharedBus, SimConfig, TrafficPattern};
    let sweep = LoadLatencySweep::new(vec![0.001, 0.004, 0.008]).with_config(SimConfig {
        cycles: 6_000,
        warmup: 1_500,
        ..SimConfig::default()
    });
    let t77 = Temperature::liquid_nitrogen();
    let bus = SharedBus::new(64, t77);
    let cryo = CryoBus::new(64, t77);
    let nets: Vec<&(dyn Network + Sync)> = vec![&bus, &cryo];
    let parallel = sweep
        .run_many(&nets, TrafficPattern::UniformRandom)
        .unwrap();
    let serial = vec![
        sweep.run(&bus, TrafficPattern::UniformRandom).unwrap(),
        sweep.run(&cryo, TrafficPattern::UniformRandom).unwrap(),
    ];
    assert_eq!(parallel, serial);
}
