//! Every experiment is a pure function of its inputs: rerunning any of
//! them must reproduce byte-identical reports. This is what makes
//! EXPERIMENTS.md auditable.

use cryowire::experiments::{self, Fidelity};

#[test]
fn analytic_experiments_are_deterministic() {
    assert_eq!(
        experiments::fig05_wire_speedup(),
        experiments::fig05_wire_speedup()
    );
    assert_eq!(
        experiments::fig12_critical_path_300k(),
        experiments::fig12_critical_path_300k()
    );
    assert_eq!(
        experiments::tab03_core_specs(),
        experiments::tab03_core_specs()
    );
    assert_eq!(
        experiments::fig22_noc_power(),
        experiments::fig22_noc_power()
    );
    assert_eq!(
        experiments::fig27_temperature_sweep(),
        experiments::fig27_temperature_sweep()
    );
}

#[test]
fn simulation_experiments_are_deterministic() {
    // Seeded RNGs everywhere: same fidelity ⇒ same curves.
    assert_eq!(
        experiments::fig18_bus_load_latency(Fidelity::Quick),
        experiments::fig18_bus_load_latency(Fidelity::Quick)
    );
    assert_eq!(
        experiments::fig23_system_performance(Fidelity::Quick),
        experiments::fig23_system_performance(Fidelity::Quick)
    );
    assert_eq!(
        experiments::ipc_cross_validation(),
        experiments::ipc_cross_validation()
    );
    assert_eq!(
        experiments::coherence_cross_validation(),
        experiments::coherence_cross_validation()
    );
    // The cycle-level experiments fan out across the harness executor
    // and share traces through the global arena; neither may perturb
    // the results run-to-run.
    assert_eq!(
        experiments::ablation_core_engine(),
        experiments::ablation_core_engine()
    );
    assert_eq!(
        experiments::cpi_stack_cycle_level(),
        experiments::cpi_stack_cycle_level()
    );
}

#[test]
fn harness_sweep_artifacts_are_thread_count_invariant() {
    // The tentpole determinism contract: running the same SweepSpec on 1
    // thread and on N threads must produce byte-identical JSON artifacts
    // (canonical form, i.e. minus wall-clock timing and cache
    // provenance).
    use cryowire::experiments::SweepOptions;
    let serial = experiments::depth_sweep_artifact(
        experiments::ablation_depth_spec(),
        SweepOptions::serial(),
    );
    let parallel = experiments::depth_sweep_artifact(
        experiments::ablation_depth_spec(),
        SweepOptions::threaded(8),
    );
    assert_eq!(serial.canonical_json(), parallel.canonical_json());

    let fig27_serial = experiments::fig27_sweep_artifact(SweepOptions::serial());
    let fig27_parallel = experiments::fig27_sweep_artifact(SweepOptions::threaded(4));
    assert_eq!(
        fig27_serial.canonical_json(),
        fig27_parallel.canonical_json()
    );
}

#[test]
fn overlapping_sweeps_only_evaluate_new_points() {
    // Content-addressed caching: a second sweep whose grid overlaps the
    // first re-evaluates only the points it adds, and the cached replay
    // is value-identical to a fresh run.
    use cryowire::experiments::SweepOptions;
    use cryowire_harness::ResultCache;

    let cache = ResultCache::new();
    let opts = SweepOptions::threaded(4).with_cache(&cache);
    let narrow =
        experiments::depth_sweep_artifact(experiments::depth_grid_spec(&[77.0, 300.0], 4), opts);
    assert_eq!(narrow.stats.evaluated, 8);
    assert_eq!(narrow.stats.cache_hits, 0);

    let wide = experiments::depth_sweep_artifact(
        experiments::depth_grid_spec(&[77.0, 150.0, 300.0], 4),
        opts,
    );
    assert_eq!(
        wide.stats.cache_hits, 8,
        "shared points must come from cache"
    );
    assert_eq!(wide.stats.evaluated, 4, "only the 150 K column is new");

    // Cached values are indistinguishable from fresh evaluation.
    let fresh = experiments::depth_sweep_artifact(
        experiments::depth_grid_spec(&[77.0, 150.0, 300.0], 4),
        SweepOptions::serial(),
    );
    assert_eq!(wide.canonical_json(), fresh.canonical_json());
}

#[test]
fn disk_cache_round_trips_bit_exactly() {
    // Float results survive the JSON round trip through the on-disk
    // cache bit-for-bit, so a warm-cache rerun reproduces the artifact.
    use cryowire::experiments::SweepOptions;
    use cryowire_harness::ResultCache;

    let dir = std::env::temp_dir().join(format!("cryowire-sweep-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cold = {
        let cache = ResultCache::with_dir(&dir).unwrap();
        experiments::fig27_sweep_artifact(SweepOptions::threaded(2).with_cache(&cache))
    };
    assert_eq!(cold.stats.evaluated, 8);
    let warm = {
        let cache = ResultCache::with_dir(&dir).unwrap();
        experiments::fig27_sweep_artifact(SweepOptions::threaded(2).with_cache(&cache))
    };
    assert_eq!(
        warm.stats.cache_hits, 8,
        "second process-like run is all hits"
    );
    assert_eq!(cold.canonical_json(), warm.canonical_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_sweep_matches_serial() {
    // The crossbeam fan-out must not change results, only wall time.
    use cryowire::device::Temperature;
    use cryowire::noc::{CryoBus, LoadLatencySweep, Network, SharedBus, SimConfig, TrafficPattern};
    let sweep = LoadLatencySweep::new(vec![0.001, 0.004, 0.008]).with_config(SimConfig {
        cycles: 6_000,
        warmup: 1_500,
        ..SimConfig::default()
    });
    let t77 = Temperature::liquid_nitrogen();
    let bus = SharedBus::new(64, t77);
    let cryo = CryoBus::new(64, t77);
    let nets: Vec<&(dyn Network + Sync)> = vec![&bus, &cryo];
    let parallel = sweep
        .run_many(&nets, TrafficPattern::UniformRandom)
        .unwrap();
    let serial = vec![
        sweep.run(&bus, TrafficPattern::UniformRandom).unwrap(),
        sweep.run(&cryo, TrafficPattern::UniformRandom).unwrap(),
    ];
    assert_eq!(parallel, serial);
}
