//! End-to-end reproduction of the paper's headline claims, exercising the
//! whole crate stack through the facade.

use cryowire::experiments::{self, Fidelity};

#[test]
fn abstract_claim_3_82x_system_speedup() {
    // Abstract: "3.82 times higher system-level performance compared to
    // the conventional computer system".
    let fig23 = experiments::fig23_system_performance(Fidelity::Quick);
    assert!(
        fig23.average_speedup_vs_300k > 3.0 && fig23.average_speedup_vs_300k < 4.7,
        "speed-up vs 300 K = {} (paper: 3.82)",
        fig23.average_speedup_vs_300k
    );
}

#[test]
fn abstract_claim_96_percent_higher_clock() {
    // Abstract: "96% higher clock frequency of CryoSP".
    use cryowire::pipeline::CoreDesign;
    let cryosp = CoreDesign::CryoSp.model_frequency_ghz().expect("feasible");
    let base = CoreDesign::Baseline300K
        .model_frequency_ghz()
        .expect("feasible");
    let gain = cryosp / base;
    assert!(
        gain > 1.8 && gain < 2.1,
        "CryoSP clock gain = {gain} (paper: 1.96)"
    );
}

#[test]
fn abstract_claim_5x_lower_noc_latency() {
    // Abstract: "five times lower NoC latency of CryoBus" (vs 300 K Mesh,
    // at the system's L3-access level).
    use cryowire::device::Temperature;
    use cryowire::memory::{LlcPathModel, MemoryDesign, NocChoice};
    use cryowire::noc::{CryoBus, RouterClass, RouterNetwork};

    let mesh = LlcPathModel::new(
        NocChoice::Router {
            network: RouterNetwork::mesh64(RouterClass::OneCycle, Temperature::ambient()),
            clock_ghz: 4.0,
        },
        MemoryDesign::mem_300k(),
    );
    let cryo = LlcPathModel::new(
        NocChoice::CryoBus {
            bus: CryoBus::new(64, Temperature::liquid_nitrogen()),
        },
        MemoryDesign::mem_77k(),
    );
    let ratio = mesh.hit_breakdown().noc_ns / cryo.hit_breakdown().noc_ns;
    assert!(ratio > 2.5, "NoC latency ratio = {ratio} (paper: ~5x)");
}

#[test]
fn intro_claim_cryobus_alone_doubles_performance() {
    // Section 1: "compared to 300K Mesh, CryoBus improves the multi-thread
    // performance by 110%" — i.e. CHP+CryoBus ≈ 2.1x CHP+Mesh.
    let fig23 = experiments::fig23_system_performance(Fidelity::Quick);
    assert!(
        fig23.cryobus_only_speedup > 1.6 && fig23.cryobus_only_speedup < 2.6,
        "CryoBus-only speed-up = {} (paper: ~2.1)",
        fig23.cryobus_only_speedup
    );
}

#[test]
fn streamcluster_is_the_best_case() {
    // Section 6.2: up to 5.74x on streamcluster thanks to its barriers
    // meeting the snooping protocol.
    let fig23 = experiments::fig23_system_performance(Fidelity::Quick);
    assert_eq!(fig23.best_case.0, "streamcluster");
    assert!(
        fig23.best_case.1 > 4.0 && fig23.best_case.1 < 7.5,
        "streamcluster speed-up = {} (paper: 5.74)",
        fig23.best_case.1
    );
}

#[test]
fn spec_prefetch_resilience() {
    // Section 7.1: even under memory-intensive rate-mode SPEC with an
    // aggressive prefetcher, the full design beats the 300 K baseline by
    // ~2.11x and 2-way interleaving resolves the contention.
    let fig24 = experiments::fig24_spec_prefetch(Fidelity::Quick);
    assert!(
        fig24.cryobus_vs_300k > 1.6,
        "SPEC speed-up vs 300 K = {} (paper: 2.11)",
        fig24.cryobus_vs_300k
    );
    assert!(fig24.cryobus2_vs_300k >= fig24.cryobus_vs_300k);
    assert!(!fig24.contention_bound.is_empty());
}

#[test]
fn cryobus_single_cycle_broadcast_needs_both_ingredients() {
    // Fig. 20's core message: neither cooling alone (77 K shared bus) nor
    // topology alone (300 K H-tree) reaches the 1-cycle broadcast.
    let fig20 = experiments::fig20_bus_latency_breakdown();
    assert_eq!(fig20.cryobus_broadcast_cycles, 1);
    let shared77 = &fig20.rows[1];
    let htree300 = &fig20.rows[2];
    assert!(shared77.4 > 1);
    assert!(htree300.4 > 1);
}

#[test]
fn power_efficiency_with_cooling_included() {
    // Fig. 22 + Table 3: the proposed designs stay under the conventional
    // power budget even paying 9.65 W of cooling per device watt.
    let fig22 = experiments::fig22_noc_power();
    assert!(fig22.cryobus_vs_mesh300 > 0.45);

    use cryowire::pipeline::CoreDesign;
    use cryowire::power::CorePowerModel;
    let core = CorePowerModel::new().power(CoreDesign::CryoSp);
    assert!(
        core.total() < 1.7,
        "CryoSP total power incl. cooling = {} (paper: 1.0)",
        core.total()
    );
}

#[test]
fn temperature_sweep_sweet_spot() {
    // Section 7.4: 100 K beats 77 K on performance/power.
    let sweep = experiments::fig27_temperature_sweep();
    let p77 = sweep.at(77.0).expect("77 K").perf_per_power;
    let p100 = sweep.at(100.0).expect("100 K").perf_per_power;
    assert!(p100 > p77);
}
