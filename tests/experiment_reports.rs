//! Smoke tests: every experiment renders a non-empty, well-formed report
//! (this is the API the benches and EXPERIMENTS.md rely on).

use cryowire::experiments::{self, Fidelity};

#[test]
fn all_analytic_reports_render() {
    let reports = vec![
        experiments::fig02_stage_breakdown().report(),
        experiments::fig05_wire_speedup().report(),
        experiments::fig09_validation().report(),
        experiments::fig10_link_validation().report(),
        experiments::fig12_critical_path_300k().report(),
        experiments::fig13_critical_path_77k().report(),
        experiments::fig14_superpipelined().report(),
        experiments::tab01_floorplan().report(),
        experiments::tab03_core_specs().report(),
        experiments::fig16_llc_latency().report(),
        experiments::fig20_bus_latency_breakdown().report(),
        experiments::fig22_noc_power().report(),
        experiments::tab04_setup(),
        experiments::fig03_cpi_stacks().report(),
        experiments::fig17_bus_vs_mesh().report(),
    ];
    for r in reports {
        assert!(!r.is_empty(), "[{}] report must have rows", r.id);
        let rendered = r.to_string();
        assert!(rendered.contains(r.id), "[{}] header missing", r.id);
        assert!(rendered.lines().count() >= 3, "[{}] too short", r.id);
    }
}

#[test]
fn simulation_backed_reports_render_quickly() {
    let reports = vec![
        experiments::fig18_bus_load_latency(Fidelity::Quick).report(),
        experiments::fig23_system_performance(Fidelity::Quick).report(),
        experiments::fig24_spec_prefetch(Fidelity::Quick).report(),
        experiments::fig27_temperature_sweep().report(),
    ];
    for r in reports {
        assert!(!r.is_empty(), "[{}] report must have rows", r.id);
    }
}

#[test]
fn fig23_report_has_13_workloads_and_5_designs() {
    let r = experiments::fig23_system_performance(Fidelity::Quick);
    assert_eq!(r.rows.len(), 13);
    assert_eq!(r.designs.len(), 5);
    let report = r.report();
    assert_eq!(report.headers.len(), 6); // workload + 5 designs
}

#[test]
fn fig24_report_has_12_workloads_and_4_designs() {
    let r = experiments::fig24_spec_prefetch(Fidelity::Quick);
    assert_eq!(r.rows.len(), 12);
    assert_eq!(r.designs.len(), 4);
}

#[test]
fn fig27_report_has_8_temperatures() {
    let r = experiments::fig27_temperature_sweep();
    assert_eq!(r.points.len(), 8);
    assert_eq!(r.report().len(), 8);
}
