//! End-to-end robustness scenarios: fault injection, panic isolation,
//! cache corruption, and stall watchdogs, exercised across crate
//! boundaries the way the sweep binary composes them.

use cryowire::experiments::{
    degraded_sweep_artifact, degraded_sweep_artifact_injected, InjectFaults, SweepOptions,
    DEGRADED_SCENARIOS,
};
use cryowire::faults::{FaultEvent, FaultKind, FaultSchedule};
use cryowire::noc::{
    Network, RouterClass, RouterNetwork, SimConfig, SimError, Simulator, TrafficPattern,
};
use cryowire::system::{EventSimConfig, EventSimulator, SystemDesign, Workload};
use cryowire_device::Temperature;
use cryowire_harness::ResultCache;
use std::path::PathBuf;

const FAULT_SEED: u64 = 0xC0FFEE;

fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cryowire-robustness-{tag}-{}", std::process::id()))
}

/// A sweep containing a deliberately panicking point completes, records
/// the error, reports partial failure — and every healthy point is
/// value-identical to the same sweep without the panic point.
#[test]
fn injected_panic_is_isolated_and_survivors_match() {
    let clean = degraded_sweep_artifact(FAULT_SEED, false, SweepOptions::serial());
    let faulted = degraded_sweep_artifact(FAULT_SEED, true, SweepOptions::threaded(4));

    assert!(!clean.has_failures());
    assert_eq!(clean.stats.points, DEGRADED_SCENARIOS.len());
    assert_eq!(faulted.stats.points, DEGRADED_SCENARIOS.len() + 1);
    assert_eq!(faulted.stats.failed, 1);
    assert!(faulted.has_failures());

    let bad = faulted
        .failed_points()
        .next()
        .expect("exactly one failed point");
    assert_eq!(bad.params.str("scenario"), "panic");
    assert!(
        bad.error
            .as_deref()
            .is_some_and(|e| e.contains("injected panic point")),
        "the panic message is preserved in the artifact: {:?}",
        bad.error
    );

    // Every healthy point survives byte-identical to the panic-free run.
    for c in &clean.points {
        let s = faulted
            .points
            .iter()
            .find(|p| p.key == c.key)
            .expect("healthy point present in faulted run");
        assert_eq!(s.value, c.value);
        assert_eq!(s.seed, c.seed);
        assert!(!s.failed());
    }
}

/// A panicking point is recomputed on every run — failures never enter
/// the cache, so a later fixed evaluation is not shadowed by a stale
/// error.
#[test]
fn failed_points_never_poison_the_cache() {
    let dir = unique_dir("poison");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::with_dir(&dir).unwrap();

    let first =
        degraded_sweep_artifact(FAULT_SEED, true, SweepOptions::serial().with_cache(&cache));
    assert_eq!(first.stats.failed, 1);

    let second =
        degraded_sweep_artifact(FAULT_SEED, true, SweepOptions::serial().with_cache(&cache));
    assert_eq!(second.stats.failed, 1, "the panic point fails again");
    assert_eq!(
        second.stats.cache_hits,
        DEGRADED_SCENARIOS.len(),
        "all healthy points hit the cache; the failed one was never stored"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupting every on-disk cache entry (torn writes) quarantines them
/// and recomputes — and the recomputed artifact is byte-identical to the
/// original.
#[test]
fn corrupt_cache_recomputes_identical_artifact() {
    let dir = unique_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);

    let original = {
        let cache = ResultCache::with_dir(&dir).unwrap();
        degraded_sweep_artifact(FAULT_SEED, false, SweepOptions::serial().with_cache(&cache))
    };

    // Tear every entry mid-document.
    let mut torn = 0u64;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, &text[..text.len() / 2]).unwrap();
            torn += 1;
        }
    }
    assert!(torn > 0, "the sweep persisted entries to corrupt");

    let cache = ResultCache::with_dir(&dir).unwrap();
    let recomputed =
        degraded_sweep_artifact(FAULT_SEED, false, SweepOptions::serial().with_cache(&cache));
    assert_eq!(
        cache.stats().quarantined,
        torn,
        "every torn entry is quarantined"
    );
    assert_eq!(original.canonical_json(), recomputed.canonical_json());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The injected typed-failure points compose with the supervision
/// policy exactly as the scalar contract promises: flaky heals under a
/// retry budget (and its healed value is what lands in the artifact),
/// poison exhausts the budget and is quarantined with its class, and
/// every healthy point stays byte-identical to an injection-free run.
#[test]
fn typed_injections_heal_or_quarantine_in_process() {
    use cryowire_harness::SupervisePolicy;
    let inject = InjectFaults {
        flaky: true,
        poison: true,
        ..InjectFaults::default()
    };
    let mut policy = SupervisePolicy::with_retries(2);
    policy.backoff_base = std::time::Duration::from_millis(1);
    let opts = SweepOptions::threaded(2).with_policy(policy);
    let artifact = degraded_sweep_artifact_injected(FAULT_SEED, inject, opts);

    assert_eq!(artifact.stats.points, DEGRADED_SCENARIOS.len() + 2);
    assert_eq!(artifact.stats.failed, 1, "only the poison point fails");
    assert_eq!(artifact.stats.quarantined, 1);
    assert!(
        artifact.stats.retried >= 3,
        "flaky retried once, poison twice"
    );

    let flaky = artifact.find(|p| p.str("scenario") == "flaky").unwrap();
    assert!(!flaky.failed());
    assert_eq!(flaky.attempts, 2);
    assert_eq!(
        flaky
            .value
            .get("healed")
            .and_then(serde_json::Value::as_bool),
        Some(true)
    );

    let poison = artifact.find(|p| p.str("scenario") == "poison").unwrap();
    assert!(poison.quarantined());
    assert_eq!(poison.attempts, 3);
    assert_eq!(
        poison.failure_class,
        Some(cryowire_harness::FailureClass::Io)
    );

    let clean = degraded_sweep_artifact(FAULT_SEED, false, SweepOptions::serial());
    for c in &clean.points {
        let s = artifact.points.iter().find(|p| p.key == c.key).unwrap();
        assert_eq!(s.value, c.value);
    }
}

// ------------------------------------------------------- chaos (subprocess)

mod chaos {
    use super::unique_dir;
    use std::path::Path;
    use std::process::{Command, Stdio};
    use std::time::{Duration, Instant};

    fn sweep() -> Command {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep"));
        cmd.stdout(Stdio::null()).stderr(Stdio::null());
        cmd
    }

    fn newline_count(path: &Path) -> usize {
        std::fs::read(path)
            .map(|b| b.iter().filter(|&&c| c == b'\n').count())
            .unwrap_or(0)
    }

    /// The wedge answer for a truly stuck process: `kill -9` a sweep
    /// mid-grid, resume from its journal, and the canonical artifact is
    /// byte-identical to an uninterrupted run.
    #[test]
    fn kill_nine_mid_sweep_then_resume_is_byte_identical() {
        let dir = unique_dir("kill9");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("run.wal");
        let grid: &[&str] = &["--sweep", "depth", "--temps", "4", "--max-split", "4"];

        // 16 points paced at 150 ms each: the grid takes >= 2.4 s, so a
        // kill after a handful of journal records lands mid-sweep.
        let mut child = sweep()
            .args(grid)
            .args(["--point-delay-ms", "150", "--canonical"])
            .arg("--journal")
            .arg(&journal)
            .arg("--out")
            .arg(dir.join("killed.json"))
            .spawn()
            .expect("spawn sweep");
        let deadline = Instant::now() + Duration::from_secs(30);
        // Wait for the header plus at least three acknowledged records.
        while newline_count(&journal) < 4 {
            assert!(Instant::now() < deadline, "journal never grew");
            assert!(
                child.try_wait().expect("try_wait").is_none(),
                "sweep exited before it could be killed"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        child.kill().expect("SIGKILL");
        let _ = child.wait();
        let lines = newline_count(&journal);
        assert!(
            (4..17).contains(&lines),
            "kill -9 landed mid-grid (journal has {lines} lines)"
        );

        let reference = dir.join("reference.json");
        let status = sweep()
            .args(grid)
            .args(["--canonical"])
            .arg("--out")
            .arg(&reference)
            .status()
            .expect("reference run");
        assert!(status.success());

        let resumed = dir.join("resumed.json");
        let status = sweep()
            .args(grid)
            .args(["--resume", "--canonical"])
            .arg("--journal")
            .arg(&journal)
            .arg("--out")
            .arg(&resumed)
            .status()
            .expect("resumed run");
        assert!(status.success());

        assert_eq!(
            std::fs::read(&reference).unwrap(),
            std::fs::read(&resumed).unwrap(),
            "resumed canonical artifact differs from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An always-failing point exhausts its retry budget, is
    /// quarantined with its typed class in the artifact, and the run
    /// exits 2 (partial failure), not 1.
    #[test]
    fn poison_point_quarantined_after_retry_budget_with_exit_2() {
        let dir = unique_dir("poisoncli");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("poison.json");
        let status = sweep()
            .args(["--sweep", "degraded", "--inject-poison"])
            .args(["--retries", "2", "--backoff-ms", "1"])
            .arg("--out")
            .arg(&out)
            .status()
            .expect("poison run");
        assert_eq!(status.code(), Some(2), "partial failure exits 2");

        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("\"failure_class\": \"io\""));
        assert!(text.contains("injected poison point"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A transiently failing point heals under a retry budget (exit 0)
    /// and is quarantined without one (exit 2).
    #[test]
    fn flaky_point_heals_with_retries_and_fails_without() {
        let dir = unique_dir("flakycli");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let healed = dir.join("healed.json");
        let status = sweep()
            .args(["--sweep", "degraded", "--inject-flaky"])
            .args(["--retries", "2", "--backoff-ms", "1"])
            .arg("--out")
            .arg(&healed)
            .status()
            .expect("flaky run with retries");
        assert_eq!(status.code(), Some(0), "flaky heals within the budget");
        assert!(std::fs::read_to_string(&healed)
            .unwrap()
            .contains("\"healed\": true"));

        let status = sweep()
            .args(["--sweep", "degraded", "--inject-flaky"])
            .status()
            .expect("flaky run without retries");
        assert_eq!(status.code(), Some(2), "no budget: first failure sticks");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A wedged evaluator is converted into a typed timeout by the
    /// cooperative deadline and quarantined.
    #[test]
    fn wedged_point_trips_the_deadline() {
        let dir = unique_dir("wedgecli");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("wedge.json");
        let status = sweep()
            .args(["--sweep", "degraded", "--inject-wedge"])
            .args(["--deadline-ms", "100"])
            .arg("--out")
            .arg(&out)
            .status()
            .expect("wedge run");
        assert_eq!(status.code(), Some(2));
        assert!(std::fs::read_to_string(&out)
            .unwrap()
            .contains("\"failure_class\": \"timeout\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Killing every resource of a mesh never hangs the NoC simulator: the
/// watchdog converts the would-be livelock into a structured stall.
#[test]
fn fully_dead_mesh_stalls_instead_of_hanging() {
    let mesh = RouterNetwork::mesh64(RouterClass::OneCycle, Temperature::liquid_nitrogen());
    let events = (0..mesh.resource_count())
        .map(|r| FaultEvent::permanent(0, FaultKind::LinkDead { resource: r }))
        .collect();
    let faults = FaultSchedule::from_events(events, 30_000);
    let sim = Simulator::new(SimConfig {
        watchdog_blocked_packets: 200,
        ..SimConfig::default()
    });
    match sim.run_with_faults(&mesh, TrafficPattern::UniformRandom, 0.01, &faults) {
        Err(SimError::Stalled {
            blocked_resources, ..
        }) => assert_eq!(blocked_resources.len(), mesh.resource_count()),
        other => panic!("expected Stalled, got {other:?}"),
    }
}

/// Killing both CryoBus ways never hangs the system-level event
/// simulator either: the stall surfaces with the blocked resources.
#[test]
fn fully_dead_cryobus_stalls_the_event_sim() {
    let design = SystemDesign::cryosp_cryobus_2way();
    let workload = &Workload::parsec()[0];
    let events = (0..8)
        .map(|r| FaultEvent::permanent(0, FaultKind::LinkDead { resource: r }))
        .collect();
    let faults = FaultSchedule::from_events(events, 1_000_000);
    let sim = EventSimulator::new(EventSimConfig {
        horizon_ns: 20_000.0,
        watchdog_blocked_accesses: 500,
        ..EventSimConfig::default()
    });
    match sim.simulate_with_faults(workload, &design, &faults) {
        Err(SimError::Stalled {
            blocked_resources, ..
        }) => assert!(!blocked_resources.is_empty()),
        other => panic!("expected Stalled, got {other:?}"),
    }
}
