//! End-to-end robustness scenarios: fault injection, panic isolation,
//! cache corruption, and stall watchdogs, exercised across crate
//! boundaries the way the sweep binary composes them.

use cryowire::experiments::{degraded_sweep_artifact, SweepOptions, DEGRADED_SCENARIOS};
use cryowire::faults::{FaultEvent, FaultKind, FaultSchedule};
use cryowire::noc::{
    Network, RouterClass, RouterNetwork, SimConfig, SimError, Simulator, TrafficPattern,
};
use cryowire::system::{EventSimConfig, EventSimulator, SystemDesign, Workload};
use cryowire_device::Temperature;
use cryowire_harness::ResultCache;
use std::path::PathBuf;

const FAULT_SEED: u64 = 0xC0FFEE;

fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cryowire-robustness-{tag}-{}", std::process::id()))
}

/// A sweep containing a deliberately panicking point completes, records
/// the error, reports partial failure — and every healthy point is
/// value-identical to the same sweep without the panic point.
#[test]
fn injected_panic_is_isolated_and_survivors_match() {
    let clean = degraded_sweep_artifact(FAULT_SEED, false, SweepOptions::serial());
    let faulted = degraded_sweep_artifact(FAULT_SEED, true, SweepOptions::threaded(4));

    assert!(!clean.has_failures());
    assert_eq!(clean.stats.points, DEGRADED_SCENARIOS.len());
    assert_eq!(faulted.stats.points, DEGRADED_SCENARIOS.len() + 1);
    assert_eq!(faulted.stats.failed, 1);
    assert!(faulted.has_failures());

    let bad = faulted
        .failed_points()
        .next()
        .expect("exactly one failed point");
    assert_eq!(bad.params.str("scenario"), "panic");
    assert!(
        bad.error
            .as_deref()
            .is_some_and(|e| e.contains("injected panic point")),
        "the panic message is preserved in the artifact: {:?}",
        bad.error
    );

    // Every healthy point survives byte-identical to the panic-free run.
    for c in &clean.points {
        let s = faulted
            .points
            .iter()
            .find(|p| p.key == c.key)
            .expect("healthy point present in faulted run");
        assert_eq!(s.value, c.value);
        assert_eq!(s.seed, c.seed);
        assert!(!s.failed());
    }
}

/// A panicking point is recomputed on every run — failures never enter
/// the cache, so a later fixed evaluation is not shadowed by a stale
/// error.
#[test]
fn failed_points_never_poison_the_cache() {
    let dir = unique_dir("poison");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::with_dir(&dir).unwrap();

    let first =
        degraded_sweep_artifact(FAULT_SEED, true, SweepOptions::serial().with_cache(&cache));
    assert_eq!(first.stats.failed, 1);

    let second =
        degraded_sweep_artifact(FAULT_SEED, true, SweepOptions::serial().with_cache(&cache));
    assert_eq!(second.stats.failed, 1, "the panic point fails again");
    assert_eq!(
        second.stats.cache_hits,
        DEGRADED_SCENARIOS.len(),
        "all healthy points hit the cache; the failed one was never stored"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupting every on-disk cache entry (torn writes) quarantines them
/// and recomputes — and the recomputed artifact is byte-identical to the
/// original.
#[test]
fn corrupt_cache_recomputes_identical_artifact() {
    let dir = unique_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);

    let original = {
        let cache = ResultCache::with_dir(&dir).unwrap();
        degraded_sweep_artifact(FAULT_SEED, false, SweepOptions::serial().with_cache(&cache))
    };

    // Tear every entry mid-document.
    let mut torn = 0u64;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, &text[..text.len() / 2]).unwrap();
            torn += 1;
        }
    }
    assert!(torn > 0, "the sweep persisted entries to corrupt");

    let cache = ResultCache::with_dir(&dir).unwrap();
    let recomputed =
        degraded_sweep_artifact(FAULT_SEED, false, SweepOptions::serial().with_cache(&cache));
    assert_eq!(
        cache.stats().quarantined,
        torn,
        "every torn entry is quarantined"
    );
    assert_eq!(original.canonical_json(), recomputed.canonical_json());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Killing every resource of a mesh never hangs the NoC simulator: the
/// watchdog converts the would-be livelock into a structured stall.
#[test]
fn fully_dead_mesh_stalls_instead_of_hanging() {
    let mesh = RouterNetwork::mesh64(RouterClass::OneCycle, Temperature::liquid_nitrogen());
    let events = (0..mesh.resource_count())
        .map(|r| FaultEvent::permanent(0, FaultKind::LinkDead { resource: r }))
        .collect();
    let faults = FaultSchedule::from_events(events, 30_000);
    let sim = Simulator::new(SimConfig {
        watchdog_blocked_packets: 200,
        ..SimConfig::default()
    });
    match sim.run_with_faults(&mesh, TrafficPattern::UniformRandom, 0.01, &faults) {
        Err(SimError::Stalled {
            blocked_resources, ..
        }) => assert_eq!(blocked_resources.len(), mesh.resource_count()),
        other => panic!("expected Stalled, got {other:?}"),
    }
}

/// Killing both CryoBus ways never hangs the system-level event
/// simulator either: the stall surfaces with the blocked resources.
#[test]
fn fully_dead_cryobus_stalls_the_event_sim() {
    let design = SystemDesign::cryosp_cryobus_2way();
    let workload = &Workload::parsec()[0];
    let events = (0..8)
        .map(|r| FaultEvent::permanent(0, FaultKind::LinkDead { resource: r }))
        .collect();
    let faults = FaultSchedule::from_events(events, 1_000_000);
    let sim = EventSimulator::new(EventSimConfig {
        horizon_ns: 20_000.0,
        watchdog_blocked_accesses: 500,
        ..EventSimConfig::default()
    });
    match sim.simulate_with_faults(workload, &design, &faults) {
        Err(SimError::Stalled {
            blocked_resources, ..
        }) => assert!(!blocked_resources.is_empty()),
        other => panic!("expected Stalled, got {other:?}"),
    }
}
