//! Property-based tests over the core invariants of the model stack.

use cryowire::device::{
    CoolingModel, GateStyle, MosfetModel, RepeaterOptimizer, ResistivityModel, Temperature, Wire,
    WireClass,
};
use cryowire::faults::FaultPlan;
use cryowire::noc::{CryoBus, MatrixArbiter, Network, SharedBus, Topology, TrafficPattern};
use cryowire::pipeline::{CriticalPathModel, IpcModel, Superpipeliner};
use cryowire::system::{ContentionEstimate, SystemDesign, SystemSimulator, Workload};
use proptest::prelude::*;

fn temp_strategy() -> impl Strategy<Value = Temperature> {
    (77.0f64..=300.0).prop_map(|k| Temperature::new(k).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- device ----

    #[test]
    fn resistivity_positive_and_monotone(k1 in 77.0f64..=299.0, dk in 1.0f64..=100.0) {
        let m = ResistivityModel::intel_45nm();
        let t1 = Temperature::new(k1).unwrap();
        let t2 = Temperature::new((k1 + dk).min(300.0)).unwrap();
        for class in WireClass::ALL {
            let r1 = m.resistivity(class, t1);
            let r2 = m.resistivity(class, t2);
            prop_assert!(r1 > 0.0);
            prop_assert!(r2 >= r1 - 1e-12, "resistivity must not fall as T rises");
        }
    }

    #[test]
    fn wire_delay_monotone_in_length(len in 10.0f64..=5_000.0, extra in 1.0f64..=2_000.0, t in temp_strategy()) {
        let mosfet = MosfetModel::industry_45nm();
        let rho = ResistivityModel::intel_45nm();
        let d1 = Wire::new(WireClass::SemiGlobal, len).unrepeated_delay_ps(&mosfet, &rho, t);
        let d2 = Wire::new(WireClass::SemiGlobal, len + extra).unrepeated_delay_ps(&mosfet, &rho, t);
        prop_assert!(d1 > 0.0);
        prop_assert!(d2 > d1, "longer wires are slower");
    }

    #[test]
    fn repeater_optimizer_never_worse_than_unrepeated(len in 100.0f64..=20_000.0, t in temp_strategy()) {
        let mosfet = MosfetModel::industry_45nm();
        let rho = ResistivityModel::intel_45nm();
        let opt = RepeaterOptimizer::new(&mosfet);
        let wire = Wire::new(WireClass::Global, len);
        let best = opt.optimal_delay(&wire, t);
        let unrepeated = wire.unrepeated_delay_ps(&mosfet, &rho, t);
        prop_assert!(best <= unrepeated + 1e-9);
        prop_assert!(best > 0.0);
    }

    #[test]
    fn cooling_overhead_nonnegative_and_monotone(k in 77.0f64..=299.0) {
        let c = CoolingModel::paper_default();
        let t = Temperature::new(k).unwrap();
        let t_warmer = Temperature::new((k + 1.0).min(300.0)).unwrap();
        prop_assert!(c.overhead(t) >= 0.0);
        prop_assert!(c.overhead(t) >= c.overhead(t_warmer));
    }

    #[test]
    fn leakage_always_positive_and_cold_is_less(v_dd in 0.5f64..=1.3, v_th in 0.15f64..=0.5) {
        prop_assume!(v_dd - v_th > 0.1);
        let m = MosfetModel::industry_45nm();
        let cold = m.leakage_factor(Temperature::liquid_nitrogen(), v_dd, v_th);
        let hot = m.leakage_factor(Temperature::ambient(), v_dd, v_th);
        prop_assert!(cold > 0.0);
        prop_assert!(cold < hot);
    }

    #[test]
    fn gate_delay_positive_everywhere(t in temp_strategy()) {
        let m = MosfetModel::industry_45nm();
        for style in [GateStyle::ComplexLogic, GateStyle::Repeater] {
            let s = m.nominal_state(style, t).unwrap();
            prop_assert!(s.delay_factor > 0.0);
            prop_assert!(s.on_current_factor > 0.0);
        }
    }

    // ---- pipeline ----

    #[test]
    fn superpipelining_never_raises_max_delay(t in temp_strategy()) {
        let model = CriticalPathModel::boom_skylake();
        let result = Superpipeliner::new(&model).superpipeline(t);
        prop_assert!(result.max_delay_ps <= model.max_delay_ps(t) + 1e-9);
        prop_assert!(result.frequency_ghz >= model.frequency_ghz(t) - 1e-9);
        prop_assert!(result.ipc_factor > 0.0 && result.ipc_factor <= 1.0);
    }

    #[test]
    fn ipc_model_bounded(added in 0usize..12, width in 1usize..=16) {
        let ipc = IpcModel::parsec_calibrated();
        let v = ipc.ipc(added, width);
        prop_assert!(v > 0.0 && v <= 1.0 + 1e-12);
    }

    // ---- noc ----

    #[test]
    fn traffic_destinations_in_range(seed in 0u64..1_000, src in 0usize..64) {
        use rand::SeedableRng;
        let topo = Topology::c64();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for pattern in [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitReverse,
            TrafficPattern::hotspot_default(),
        ] {
            let d = pattern.destination(src, &topo, &mut rng);
            prop_assert!(d < 64);
            prop_assert!(d != src);
        }
    }

    #[test]
    fn arbiter_grants_are_valid_and_requested(n in 1usize..=32, mask in 0u64..u64::MAX) {
        let mut arb = MatrixArbiter::new(n);
        let requests: Vec<bool> = (0..n).map(|i| mask & (1 << (i % 64)) != 0).collect();
        match arb.arbitrate(&requests) {
            Some(g) => prop_assert!(requests[g], "granted a non-requester"),
            None => prop_assert!(requests.iter().all(|r| !r)),
        }
    }

    #[test]
    fn bus_zero_load_independent_of_endpoints(src in 0usize..64, dst in 0usize..64) {
        prop_assume!(src != dst);
        let bus = SharedBus::new(64, Temperature::liquid_nitrogen());
        prop_assert_eq!(
            bus.zero_load_latency(src, dst),
            bus.transaction_latency()
        );
    }

    #[test]
    fn manhattan_distance_triangle_inequality(a in 0usize..64, b in 0usize..64, c in 0usize..64) {
        let topo = Topology::c64();
        let ab = topo.manhattan_hops(a, b);
        let bc = topo.manhattan_hops(b, c);
        let ac = topo.manhattan_hops(a, c);
        prop_assert!(ac <= ab + bc);
    }

    // ---- system ----

    #[test]
    fn contention_latency_at_least_zero_load(rate in 0.0f64..=0.02) {
        let bus = CryoBus::new(64, Temperature::liquid_nitrogen());
        let e = ContentionEstimate::estimate(&bus, TrafficPattern::UniformRandom, rate);
        prop_assert!(e.avg_latency >= e.zero_load_latency - 1e-9);
        prop_assert!(e.peak_utilization >= 0.0);
    }

    #[test]
    fn system_performance_finite_and_positive(idx in 0usize..13) {
        let sim = SystemSimulator::new();
        let w = &Workload::parsec()[idx];
        for design in SystemDesign::evaluation_set() {
            let m = sim.evaluate(w, &design);
            prop_assert!(m.performance().is_finite());
            prop_assert!(m.performance() > 0.0);
            prop_assert!(m.stack.noc_fraction() >= 0.0 && m.stack.noc_fraction() <= 1.0);
        }
    }

    // ---- faults ----

    #[test]
    fn fault_plans_expand_bit_identically(seed in 0u64..u64::MAX, horizon in 1u64..=1_000_000) {
        let build = || {
            FaultPlan::new(seed)
                .link_failures(2, &[0, 1, 2, 3])
                .degraded_links(1, &[4, 5], 1.5, 3.0)
                .flit_loss(0.02, 3)
                .cooling_transient(120.0, 0.25, 0.5)
        };
        let a = build().schedule(horizon);
        let b = build().schedule(horizon);
        prop_assert_eq!(a.canonical(), b.canonical());
        prop_assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn fault_schedules_differ_across_seeds(seed in 0u64..u64::MAX / 2) {
        let plan = |s| FaultPlan::new(s).link_failures(2, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let a = plan(seed).schedule(10_000).canonical();
        let b = plan(seed + 1).schedule(10_000).canonical();
        prop_assert!(a != b, "adjacent seeds produced the same schedule");
    }

    #[test]
    fn faster_memory_never_hurts(idx in 0usize..13) {
        use cryowire::memory::MemoryDesign;
        let sim = SystemSimulator::new();
        let w = &Workload::parsec()[idx];
        let slow = SystemDesign::cryosp_cryobus().with_memory(MemoryDesign::mem_300k());
        let fast = SystemDesign::cryosp_cryobus().with_memory(MemoryDesign::mem_77k());
        prop_assert!(
            sim.evaluate(w, &fast).performance() >= sim.evaluate(w, &slow).performance() - 1e-12
        );
    }
}

/// Thread count must not leak into the canonical artifact, even when the
/// sweep is running under an injected fault schedule. (Plain test rather
/// than a proptest case: each sweep is four full event simulations.)
#[test]
fn serial_and_parallel_sweeps_agree_under_faults() {
    use cryowire::experiments::{degraded_sweep_artifact, SweepOptions};
    for fault_seed in [0xC0FFEE_u64, 7, 9_001] {
        let serial = degraded_sweep_artifact(fault_seed, false, SweepOptions::serial());
        let parallel = degraded_sweep_artifact(fault_seed, false, SweepOptions::threaded(4));
        assert_eq!(
            serial.canonical_json(),
            parallel.canonical_json(),
            "fault_seed {fault_seed}: serial and 4-thread artifacts diverged"
        );
    }
}
