//! Consistency checks across crate boundaries: the same physical quantity
//! derived through different crates must agree.

use cryowire::device::{MosfetModel, RepeaterOptimizer, Temperature, Wire, WireClass};
use cryowire::floorplan::Floorplan;
use cryowire::noc::{CryoBus, LinkModel, Network, SharedBus, SimConfig, Simulator, TrafficPattern};
use cryowire::pipeline::{CoreDesign, CriticalPathModel, Superpipeliner};
use cryowire::system::{ContentionEstimate, SystemDesign, SystemSimulator, Workload};

#[test]
fn pipeline_wire_factor_agrees_with_device_crate() {
    // The pipeline crate's wire factor must equal the device crate's
    // forwarding-wire speed-up for the floorplan's wire length.
    let model = CriticalPathModel::boom_skylake();
    let mosfet = MosfetModel::industry_45nm();
    let rho = cryowire::device::ResistivityModel::intel_45nm();
    let fp = Floorplan::skylake_like();
    let wire = Wire::new(WireClass::SemiGlobal, fp.forwarding_wire_length_um());
    let t77 = Temperature::liquid_nitrogen();
    let direct = wire.unrepeated_speedup(&mosfet, &rho, t77);
    let via_pipeline = 1.0 / model.wire_factor(t77);
    assert!(
        (direct - via_pipeline).abs() < 1e-9,
        "device {direct} vs pipeline {via_pipeline}"
    );
}

#[test]
fn table3_spec_frequencies_track_model_chain() {
    // Table 3's published frequencies and the full model derivation must
    // agree within a small tolerance for every design.
    for design in CoreDesign::ALL {
        let spec = design.spec().frequency_ghz;
        let model = design.model_frequency_ghz().expect("feasible");
        let err = (spec - model).abs() / spec;
        assert!(
            err < 0.09,
            "{}: spec {spec} vs model {model}",
            design.name()
        );
    }
}

#[test]
fn link_model_agrees_with_repeater_optimizer() {
    // hops/cycle must follow the repeated 2 mm global wire speed-up.
    let link = LinkModel::new();
    let opt = RepeaterOptimizer::new(&MosfetModel::industry_45nm());
    let wire = Wire::new(WireClass::Global, 2_000.0);
    let t77 = Temperature::liquid_nitrogen();
    assert!((link.speedup(t77) - opt.speedup(&wire, t77)).abs() < 1e-9);
}

#[test]
fn bus_saturation_theory_matches_cycle_simulation() {
    // The analytic saturation rate (ways / (occupancy × cores)) must
    // separate a passing load from a saturating load in the cycle-level
    // simulator.
    let bus = SharedBus::new(64, Temperature::liquid_nitrogen());
    let sat = bus.saturation_rate_per_core();
    let sim = Simulator::new(SimConfig {
        cycles: 20_000,
        warmup: 4_000,
        ..SimConfig::default()
    });
    let below = sim
        .run(&bus, TrafficPattern::UniformRandom, sat * 0.6)
        .expect("valid rate");
    let above = sim
        .run(&bus, TrafficPattern::UniformRandom, (sat * 1.6).min(0.9))
        .expect("valid rate");
    assert!(!below.saturated, "60% of capacity must not saturate");
    assert!(above.saturated, "160% of capacity must saturate");
}

#[test]
fn contention_estimate_brackets_simulator() {
    // The system crate's queueing estimate and the NoC crate's simulator
    // agree on zero-load latency exactly and on moderate-load latency
    // within 30 %.
    let bus = CryoBus::new(64, Temperature::liquid_nitrogen());
    let rate = 0.006;
    let est = ContentionEstimate::estimate(&bus, TrafficPattern::UniformRandom, rate);
    assert!((est.zero_load_latency - bus.transaction_latency() as f64).abs() < 1e-9);
    let sim = Simulator::new(SimConfig {
        cycles: 30_000,
        warmup: 6_000,
        ..SimConfig::default()
    });
    let exact = sim
        .run(&bus, TrafficPattern::UniformRandom, rate)
        .expect("valid rate");
    let err = (est.avg_latency - exact.avg_latency).abs() / exact.avg_latency;
    assert!(
        err < 0.30,
        "estimate {} vs sim {}",
        est.avg_latency,
        exact.avg_latency
    );
}

#[test]
fn superpipelining_also_helps_the_4_wide_floorplan() {
    // CryoCore's halved backend shortens the forwarding wire; the
    // superpipelining methodology must still pick the same three stages.
    let model = CriticalPathModel::boom_skylake().with_floorplan(Floorplan::with_alu_count(4));
    let result = Superpipeliner::new(&model).superpipeline(Temperature::liquid_nitrogen());
    assert_eq!(result.added_stages, 3);
    assert!(result.frequency_ghz > 6.0);
}

#[test]
fn system_performance_scales_with_core_frequency_when_core_bound() {
    // With the ideal NoC and a compute-bound workload, doubling the clock
    // must nearly double performance (the system model's core term).
    let sim = SystemSimulator::new();
    let w = Workload::parsec_by_name("blackscholes").expect("known workload");
    let base = SystemDesign::chp_mesh().with_ideal_noc();
    let fast = SystemDesign::chp_mesh()
        .with_ideal_noc()
        .with_core_frequency(12.2);
    let p1 = sim.evaluate(&w, &base).performance();
    let p2 = sim.evaluate(&w, &fast).performance();
    let gain = p2 / p1;
    assert!(gain > 1.5 && gain <= 2.0, "clock-doubling gain = {gain}");
}

#[test]
fn evaluation_set_monotonicity() {
    // Fig. 23's designs must be ordered: every workload runs fastest on
    // the full design and slowest on one of the two baselines.
    let sim = SystemSimulator::new();
    let designs = SystemDesign::evaluation_set();
    for w in Workload::parsec() {
        let perfs: Vec<f64> = designs
            .iter()
            .map(|d| sim.evaluate(&w, d).performance())
            .collect();
        let max = perfs.iter().copied().fold(0.0, f64::max);
        assert!(
            (perfs[4] - max).abs() / max < 1e-9,
            "{}: CryoSP+CryoBus should be fastest",
            w.name
        );
        assert!(perfs[2] >= perfs[1], "{}: CryoSP+Mesh >= CHP+Mesh", w.name);
        assert!(perfs[3] >= perfs[1], "{}: CHP+CryoBus >= CHP+Mesh", w.name);
    }
}

#[test]
fn cryobus_mechanism_consistent_with_latency_model() {
    // The Fig. 19 mechanism pieces must match the latency model's
    // structure: a 64-core CryoBus has a 3-level H-tree whose broadcast
    // reaches all cores, and its arbiter serves all 64 requesters.
    let bus = CryoBus::new(64, Temperature::liquid_nitrogen());
    assert_eq!(bus.fabric().levels(), 3);
    assert_eq!(bus.arbiter().len(), 64);
    assert_eq!(
        bus.fabric().broadcast_reach(17).len(),
        bus.topology().nodes()
    );
}

#[test]
fn parsec_injection_rates_land_in_the_fig18_band() {
    // The Fig. 18 workload bands are encoded as constants in the NoC
    // crate; the system model's converged injection rates for the PARSEC
    // profiles must actually fall at or below that band (the premise of
    // Guideline #2).
    use cryowire::noc::WORKLOAD_BANDS;
    let sim = SystemSimulator::new();
    let design = SystemDesign::chp_cryobus();
    let parsec_band = WORKLOAD_BANDS[0];
    for w in Workload::parsec() {
        let rate = sim.evaluate(&w, &design).injection_rate;
        assert!(
            rate <= parsec_band.max_rate * 2.0,
            "{}: injection rate {rate} far above the PARSEC band ({})",
            w.name,
            parsec_band.max_rate
        );
    }
}

#[test]
fn router_timing_supports_table4_mesh_clock() {
    // The system configs hard-code Table 4's 5.44 GHz 77 K mesh clock;
    // the router-stage timing model must independently support it.
    use cryowire::device::{OperatingPoint, Temperature};
    use cryowire::noc::RouterTimingModel;
    let m = RouterTimingModel::eva_like();
    let f = m.frequency_ghz_at(Temperature::liquid_nitrogen(), OperatingPoint::noc_77k());
    assert!((f - 5.44).abs() / 5.44 < 0.12, "router model gives {f} GHz");
}
